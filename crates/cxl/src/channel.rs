//! One CXL channel: CPU-side controller, serializing link (both
//! directions), and the Type-3 device with its DDR channel(s).
//!
//! The dataflow per request:
//!
//! ```text
//! CPU  ──req queue──▶ TX serializer ──2 ports──▶ device buffer ──▶ DDR
//! CPU  ◀─2 ports──── RX serializer ◀──────────  DDR completion
//! ```
//!
//! Waiting anywhere (link busy, device buffer full, DDR queues full) shows
//! up as *queuing delay*; the four port crossings and the request's own
//! data serialization are reported separately as *CXL interface delay*,
//! matching the paper's Fig. 5 latency breakdown.

use std::collections::VecDeque;

use coaxial_dram::{
    Channel as DdrChannel, ChannelStats, DramConfig, MemRequest, MemResponse, MemoryBackend,
};
use coaxial_sim::{BoundedQueue, Cycle};

use crate::config::CxlLinkConfig;

/// In-flight message on a link direction, ordered by arrival time.
#[derive(Debug, Clone, Copy)]
struct InFlight<T> {
    arrives_at: Cycle,
    payload: T,
}

/// One CXL link + Type-3 device.
pub struct CxlChannel {
    cfg: CxlLinkConfig,
    /// CPU-side request queue (CXL.mem master).
    req_queue: BoundedQueue<MemRequest>,
    /// Requests serialized onto the wire, heading to the device.
    tx_in_flight: VecDeque<InFlight<MemRequest>>,
    /// Device-side buffer in front of the DDR controller(s).
    device_buf: BoundedQueue<MemRequest>,
    /// DDR channels on the Type-3 device.
    ddr: Vec<DdrChannel>,
    /// Completions waiting for the RX serializer.
    resp_wait: VecDeque<MemResponse>,
    /// Responses on the wire, heading back to the CPU.
    rx_in_flight: VecDeque<InFlight<MemResponse>>,
    /// Responses delivered to the CPU side, ready to pop.
    delivered: VecDeque<MemResponse>,
    /// Next cycle each link direction becomes free.
    tx_free_at: Cycle,
    rx_free_at: Cycle,
    /// CXL.mem flow-control credits: one per device-buffer slot. The TX
    /// serializer only puts a request on the wire when it holds a credit,
    /// so the device buffer can never overflow; credits travel back with
    /// a port-crossing delay once the device hands a request to its DDR
    /// controller.
    credits: usize,
    credit_returns: VecDeque<Cycle>,
    /// Busy-cycle accounting for link utilization.
    pub tx_busy: u64,
    pub rx_busy: u64,
    /// Cycles the TX head-of-queue sat ready behind an idle serializer
    /// waiting *only* for a flow-control credit (link-pressure signal,
    /// exported as `cxl.port.credit_wait_cycles`). Measured as interval
    /// arithmetic at TX start — `start - max(tx_free_at, tx_front_since)`
    /// — so both run-loop engines account identically regardless of
    /// which cycles they actually tick.
    pub credit_wait_cycles: u64,
    /// Cycle at which the current head-of-queue became eligible for the
    /// TX serializer (set on enqueue-to-empty and after each TX start).
    tx_front_since: Cycle,
    /// Credit-cycles accumulator: Σ (credits outstanding) × (interval
    /// length), advanced by interval arithmetic at every credit mutation,
    /// so both run-loop engines account identically regardless of which
    /// cycles they actually tick. Divide by the window for the mean
    /// device-buffer occupancy (`cxl.port.credit_occupancy`).
    credit_occ_cycles: u64,
    /// Cycle of the last credit count change (interval anchor).
    last_credit_change: Cycle,
    now: Cycle,
    window_start: Cycle,
    /// Cached no-op horizon for the link stages 2–6: they are provably
    /// idle for every cycle strictly before this (the
    /// [`Self::link_next_event`] bound, memoized after a tick where no
    /// stage moved anything). The device DDR channels still tick every
    /// cycle — their `now` anchors bandwidth windows and enqueue
    /// timestamps — and the completion harvest still runs every cycle, so
    /// the horizon deliberately excludes DDR state. Reset on
    /// [`Self::try_enqueue`] and on any harvested completion, the only two
    /// events that can create link work.
    idle_until: Cycle,
}

impl CxlChannel {
    pub fn new(cfg: CxlLinkConfig, dram_cfg: &DramConfig) -> Self {
        let ddr =
            (0..cfg.ddr_channels_per_device).map(|_| DdrChannel::new(dram_cfg.clone())).collect();
        Self {
            req_queue: BoundedQueue::new(cfg.req_queue_depth),
            tx_in_flight: VecDeque::new(),
            device_buf: BoundedQueue::new(cfg.device_buf_depth),
            ddr,
            resp_wait: VecDeque::new(),
            rx_in_flight: VecDeque::new(),
            delivered: VecDeque::new(),
            tx_free_at: 0,
            rx_free_at: 0,
            credits: cfg.device_buf_depth,
            credit_returns: VecDeque::new(),
            tx_busy: 0,
            rx_busy: 0,
            credit_wait_cycles: 0,
            tx_front_since: 0,
            credit_occ_cycles: 0,
            last_credit_change: 0,
            now: 0,
            window_start: 0,
            idle_until: 0,
            cfg,
        }
    }

    pub fn config(&self) -> &CxlLinkConfig {
        &self.cfg
    }

    /// Accept a request into the CPU-side queue.
    pub fn try_enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let was_empty = self.req_queue.is_empty();
        let r = self.req_queue.try_push(req);
        if r.is_ok() && was_empty {
            // This request is the new TX head; it can start no earlier
            // than the next tick (same convention as the idle horizon).
            self.tx_front_since = self.now + 1;
        }
        if r.is_ok() && self.credits > 0 {
            // The TX serializer may now have work before the cached link
            // horizon; lower it to the serializer-free cycle (O(1)). With
            // no credits in hand the horizon already covers the credit
            // return that must precede any TX start.
            self.idle_until = self.idle_until.min(self.tx_free_at.max(self.now + 1));
        }
        r
    }

    /// Close the current credit-occupancy interval at `now` (called just
    /// before every mutation of `credits`). Outstanding credits equal the
    /// device-buffer slots currently claimed by in-flight requests.
    #[inline]
    fn note_credit_change(&mut self, now: Cycle) {
        let held = (self.cfg.device_buf_depth - self.credits) as u64;
        self.credit_occ_cycles += held * now.saturating_sub(self.last_credit_change);
        self.last_credit_change = now;
    }

    /// Route a device-local line address across the device's DDR channels.
    #[inline]
    fn route(&self, line_addr: u64) -> (usize, u64) {
        let n = self.ddr.len() as u64;
        (coaxial_sim::idx(line_addr % n), line_addr / n)
    }

    /// Advance one cycle.
    ///
    /// The DDR tick and the completion harvest run every cycle (both are
    /// cheap: the sub-channels carry their own idle cache and the harvest
    /// is a heap peek per channel). The link stages 2–6 are gated on a
    /// cached [`Self::link_next_event`] horizon, memoized after a tick
    /// where no stage moved anything; a harvest or an enqueue resets it.
    pub fn tick(&mut self, now: Cycle) {
        self.now = now;
        for d in &mut self.ddr {
            d.tick(now);
        }
        let mut did = false;

        // 1. Harvest DDR completions into the RX wait queue.
        let n = self.ddr.len() as u64;
        for (i, d) in self.ddr.iter_mut().enumerate() {
            while let Some(mut r) = d.pop_response(now) {
                r.line_addr = r.line_addr * n + i as u64;
                self.resp_wait.push_back(r);
                did = true;
            }
        }
        if did {
            // New RX work invalidates any cached link-idle horizon.
            self.idle_until = 0;
        } else if now < self.idle_until {
            return; // link stages provably idle (see link_next_event)
        }

        // 2. RX serializer: start the next response transfer if idle.
        if now >= self.rx_free_at {
            if let Some(resp) = self.resp_wait.pop_front() {
                // Read responses carry a 64 B line; write acks are headers.
                let occ =
                    if resp.is_write { self.cfg.rx_header_cycles } else { self.cfg.rx_line_cycles };
                self.rx_free_at = now + occ;
                self.rx_busy += occ;
                let arrives_at = now + occ + 2 * self.cfg.port_latency;
                self.rx_in_flight.push_back(InFlight { arrives_at, payload: resp });
                did = true;
            }
        }

        // 3. Deliver responses that have crossed the CPU-side port.
        while let Some(f) = self.rx_in_flight.front() {
            if f.arrives_at > now {
                break;
            }
            let f = self.rx_in_flight.pop_front().expect("peeked");
            let mut resp = f.payload;
            resp.completed_at = f.arrives_at;
            // CXL interface delay = the unloaded adder; everything else the
            // request experienced beyond DRAM service is queuing.
            resp.cxl_cycles = if resp.is_write {
                self.cfg.unloaded_write_adder()
            } else {
                self.cfg.unloaded_read_adder()
            };
            let total = resp.completed_at - resp.issued_at;
            resp.queue_cycles = total.saturating_sub(resp.service_cycles + resp.cxl_cycles);
            self.delivered.push_back(resp);
            did = true;
        }

        // 3b. Credits released by the device arrive back at the CPU port.
        while let Some(&at) = self.credit_returns.front() {
            if at > now {
                break;
            }
            self.credit_returns.pop_front();
            self.note_credit_change(now);
            self.credits += 1;
            did = true;
        }

        // 4. TX serializer: put the next request on the wire if idle and a
        // device-buffer credit is available.
        if now >= self.tx_free_at && self.credits > 0 {
            if let Some(&req) = self.req_queue.front() {
                // Write requests carry the 64 B line downstream; reads are
                // header-only.
                let occ = if req.is_write {
                    self.cfg.tx_header_cycles + self.cfg.tx_line_cycles
                } else {
                    self.cfg.tx_header_cycles
                };
                // Any start delay beyond the serializer-free/head-ready
                // bound can only have been a missing credit (the one
                // other gate on this stage).
                self.credit_wait_cycles +=
                    now.saturating_sub(self.tx_free_at.max(self.tx_front_since));
                self.tx_free_at = now + occ;
                self.tx_busy += occ;
                let arrives_at = now + occ + 2 * self.cfg.port_latency;
                self.req_queue.pop();
                self.note_credit_change(now);
                self.credits -= 1;
                self.tx_front_since = now + 1;
                self.tx_in_flight.push_back(InFlight { arrives_at, payload: req });
                did = true;
            }
        }

        // 5. Requests that reached the device enter its buffer. The credit
        // protocol guarantees a free slot.
        while let Some(f) = self.tx_in_flight.front() {
            if f.arrives_at > now {
                break;
            }
            let f = self.tx_in_flight.pop_front().expect("peeked");
            self.device_buf.try_push(f.payload).expect("credits guarantee space");
            did = true;
        }

        // 6. Drain the device buffer into the DDR controller(s); each
        // drained slot returns a credit to the CPU after a port crossing.
        while let Some(&req) = self.device_buf.front() {
            let (c, local) = self.route(req.line_addr);
            let mut local_req = req;
            local_req.line_addr = local;
            if self.ddr[c].try_enqueue(local_req).is_ok() {
                self.device_buf.pop();
                self.credit_returns.push_back(now + 2 * self.cfg.port_latency);
                did = true;
            } else {
                break;
            }
        }

        if !did {
            self.idle_until = self.link_next_event(now);
        }
    }

    /// Pop one delivered response.
    pub fn pop_response(&mut self) -> Option<MemResponse> {
        self.delivered.pop_front()
    }

    /// Whether the CPU-side queue can take another request.
    pub fn can_accept(&self) -> bool {
        !self.req_queue.is_full()
    }

    /// Aggregated DDR stats of the device's channel(s).
    pub fn ddr_stats(&self) -> ChannelStats {
        let mut it = self.ddr.iter();
        let mut st = it.next().expect("≥1 DDR channel").stats();
        for c in it {
            st.merge(&c.stats());
        }
        st
    }

    /// Number of DDR channels on the Type-3 device.
    pub fn ddr_channel_count(&self) -> usize {
        self.ddr.len()
    }

    /// TX/RX link utilization over `elapsed` cycles.
    pub fn link_utilization(&self, elapsed: Cycle) -> (f64, f64) {
        if elapsed == 0 {
            return (0.0, 0.0);
        }
        (self.tx_busy as f64 / elapsed as f64, self.rx_busy as f64 / elapsed as f64)
    }

    /// Zero statistics on the link and its DDR channels; the new
    /// measurement window starts at `now`.
    pub fn reset_stats(&mut self, now: Cycle) {
        self.tx_busy = 0;
        self.rx_busy = 0;
        self.credit_wait_cycles = 0;
        // Don't let pre-window head-of-queue waiting leak into the new
        // measurement window.
        self.tx_front_since = self.tx_front_since.max(now);
        self.credit_occ_cycles = 0;
        self.last_credit_change = now;
        self.window_start = now;
        for d in &mut self.ddr {
            d.reset_stats(now);
        }
    }

    /// Cycles since the last stats reset.
    pub fn window_cycles(&self) -> Cycle {
        self.now.saturating_sub(self.window_start)
    }

    /// Currently held TX flow-control credits (test/debug aid).
    pub fn credits(&self) -> usize {
        self.credits
    }

    /// Mean outstanding flow-control credits (≡ device-buffer slots held
    /// by in-flight requests) over the measurement window, including the
    /// still-open interval since the last credit change. 0 when unloaded,
    /// approaching `device_buf_depth` when the link saturates.
    pub fn credit_occupancy_mean(&self) -> f64 {
        let window = self.window_cycles();
        if window == 0 {
            return 0.0;
        }
        let held = (self.cfg.device_buf_depth - self.credits) as u64;
        let open_tail =
            held * self.now.saturating_sub(self.last_credit_change.max(self.window_start));
        (self.credit_occ_cycles + open_tail) as f64 / window as f64
    }

    /// Earliest future cycle at which ticking this channel could do
    /// observable work, assuming no new requests arrive and `delivered` has
    /// been drained. Mirrors the tick pipeline stage by stage: device DDR
    /// events, RX serializer start, in-flight arrivals, credit returns, and
    /// TX serializer start.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        let ddr = self.ddr.iter().map(|d| d.next_event(now)).min().unwrap_or(Cycle::MAX);
        ddr.min(self.link_next_event(now))
    }

    /// [`Self::next_event`] restricted to the link stages 2–6 — everything
    /// except the device DDR channels. This is the tick fast path's idle
    /// horizon: the harvest stage runs every cycle regardless (and resets
    /// the horizon when it moves a completion), so DDR state need not
    /// bound it, sparing a per-idle-cycle scan of the DDR schedulers.
    fn link_next_event(&self, now: Cycle) -> Cycle {
        let mut next = Cycle::MAX;
        if !self.resp_wait.is_empty() {
            next = next.min(self.rx_free_at.max(now + 1));
        }
        if let Some(f) = self.rx_in_flight.front() {
            next = next.min(f.arrives_at.max(now + 1));
        }
        if let Some(&at) = self.credit_returns.front() {
            next = next.min(at.max(now + 1));
        }
        if !self.req_queue.is_empty() && self.credits > 0 {
            next = next.min(self.tx_free_at.max(now + 1));
        }
        if let Some(f) = self.tx_in_flight.front() {
            next = next.min(f.arrives_at.max(now + 1));
        }
        if !self.device_buf.is_empty() || !self.delivered.is_empty() {
            next = next.min(now + 1);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_sim::cycles_to_ns;

    fn channel() -> CxlChannel {
        CxlChannel::new(CxlLinkConfig::x8_symmetric(), &DramConfig::ddr5_4800())
    }

    fn run_to_completion(ch: &mut CxlChannel, n: usize, limit: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        for now in 0..limit {
            ch.tick(now);
            while let Some(r) = ch.pop_response() {
                out.push(r);
            }
            if out.len() >= n {
                break;
            }
        }
        out
    }

    #[test]
    fn unloaded_read_pays_the_cxl_premium() {
        let mut ch = channel();
        ch.try_enqueue(MemRequest::read(1, 0, 0)).unwrap();
        let resps = run_to_completion(&mut ch, 1, 10_000);
        assert_eq!(resps.len(), 1);
        let total_ns = cycles_to_ns(resps[0].total_cycles());
        // Direct DDR closed-bank read is ~37 ns; CXL adds ~52.5 ns.
        assert!((80.0..110.0).contains(&total_ns), "total = {total_ns} ns");
        let cxl_ns = cycles_to_ns(resps[0].cxl_cycles);
        assert!((52.0..54.0).contains(&cxl_ns), "cxl = {cxl_ns} ns");
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let mut ch = channel();
        for i in 0..32u64 {
            ch.try_enqueue(MemRequest::read(i, i * 97, 0)).unwrap();
        }
        let resps = run_to_completion(&mut ch, 32, 100_000);
        assert_eq!(resps.len(), 32);
        for r in &resps {
            assert_eq!(
                r.queue_cycles + r.service_cycles + r.cxl_cycles,
                r.total_cycles(),
                "breakdown must account for every cycle"
            );
        }
    }

    #[test]
    fn writes_pay_tx_serialization() {
        let mut ch = channel();
        ch.try_enqueue(MemRequest::write(1, 0, 0)).unwrap();
        let resps = run_to_completion(&mut ch, 1, 10_000);
        let cxl_ns = cycles_to_ns(resps[0].cxl_cycles);
        assert!((54.5..57.0).contains(&cxl_ns), "write cxl = {cxl_ns} ns");
    }

    #[test]
    fn asym_device_has_two_ddr_channels() {
        let ch = CxlChannel::new(CxlLinkConfig::x8_asymmetric(), &DramConfig::ddr5_4800());
        assert_eq!(ch.ddr_channel_count(), 2);
    }

    #[test]
    fn asym_spreads_load_over_both_ddr_channels() {
        let mut ch = CxlChannel::new(CxlLinkConfig::x8_asymmetric(), &DramConfig::ddr5_4800());
        for i in 0..64u64 {
            ch.try_enqueue(MemRequest::read(i, i, 0)).unwrap();
        }
        let resps = run_to_completion(&mut ch, 64, 100_000);
        assert_eq!(resps.len(), 64);
        let st = ch.ddr_stats();
        assert_eq!(st.reads, 64);
    }

    #[test]
    fn back_pressure_when_request_queue_full() {
        let mut ch = channel();
        let depth = ch.config().req_queue_depth;
        for i in 0..depth as u64 {
            ch.try_enqueue(MemRequest::read(i, i, 0)).unwrap();
        }
        assert!(ch.try_enqueue(MemRequest::read(999, 0, 0)).is_err());
        assert!(!ch.can_accept());
    }

    #[test]
    fn link_contention_adds_queue_delay_not_cxl_delay() {
        // Saturate the TX direction with writes: later writes should show
        // growing queue_cycles while cxl_cycles stays fixed.
        let mut ch = channel();
        for i in 0..32u64 {
            ch.try_enqueue(MemRequest::write(i, i * 1013, 0)).unwrap();
        }
        let resps = run_to_completion(&mut ch, 32, 100_000);
        let first = resps.first().unwrap();
        let last = resps.last().unwrap();
        assert_eq!(first.cxl_cycles, last.cxl_cycles, "fixed interface delay");
        assert!(last.queue_cycles > first.queue_cycles, "queuing grows under load");
    }

    #[test]
    fn credits_are_conserved() {
        let mut ch = channel();
        let total_credits = ch.config().device_buf_depth;
        assert_eq!(ch.credits(), total_credits);
        for i in 0..40u64 {
            ch.try_enqueue(MemRequest::read(i, i * 313, 0)).unwrap();
        }
        let mut got = 0;
        for now in 0..200_000u64 {
            ch.tick(now);
            while ch.pop_response().is_some() {
                got += 1;
            }
            assert!(ch.credits() <= total_credits, "credits over-returned");
            if got == 40 {
                break;
            }
        }
        assert_eq!(got, 40);
        // Once quiescent, every credit is home again.
        for now in 200_000..200_200u64 {
            ch.tick(now);
        }
        assert_eq!(ch.credits(), total_credits, "all credits returned at quiescence");
    }

    #[test]
    fn unloaded_traffic_never_waits_on_credits() {
        let mut ch = channel();
        // Far fewer outstanding requests than device-buffer credits (32):
        // TX may queue behind its own serializer, never behind credits.
        for i in 0..8u64 {
            ch.try_enqueue(MemRequest::read(i, i * 313, 0)).unwrap();
        }
        let resps = run_to_completion(&mut ch, 8, 100_000);
        assert_eq!(resps.len(), 8);
        assert_eq!(ch.credit_wait_cycles, 0, "unloaded link must not report credit pressure");
    }

    #[test]
    fn saturating_read_stream_stalls_on_credits() {
        // Reads serialize onto TX in 3 cycles but drain through the device
        // DDR slower than that, so the device buffer fills, all 32 credits
        // go outstanding, and the TX head must wait for returns.
        let mut ch = channel();
        let mut issued = 0u64;
        let mut got = 0u64;
        let total = 300u64;
        for now in 0..2_000_000u64 {
            ch.tick(now);
            while issued < total && ch.can_accept() {
                ch.try_enqueue(MemRequest::read(issued, issued * 61, now)).unwrap();
                issued += 1;
            }
            while ch.pop_response().is_some() {
                got += 1;
            }
            if got == total {
                break;
            }
        }
        assert_eq!(got, total);
        assert!(
            ch.credit_wait_cycles > 0,
            "a saturating stream must register credit waits, got {}",
            ch.credit_wait_cycles
        );
    }

    #[test]
    fn all_requests_complete_exactly_once() {
        let mut ch = channel();
        let mut issued = 0u64;
        let mut done = Vec::new();
        let total = 300u64;
        for now in 0..2_000_000u64 {
            ch.tick(now);
            while issued < total && ch.can_accept() {
                let req = if issued % 4 == 3 {
                    MemRequest::write(issued, issued * 61, now)
                } else {
                    MemRequest::read(issued, issued * 61, now)
                };
                ch.try_enqueue(req).unwrap();
                issued += 1;
            }
            while let Some(r) = ch.pop_response() {
                done.push(r.id);
            }
            if done.len() as u64 == total {
                break;
            }
        }
        done.sort_unstable();
        done.dedup();
        assert_eq!(done.len() as u64, total);
    }
}
