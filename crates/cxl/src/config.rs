//! CXL link parameters.
//!
//! All serialization figures come straight from the paper (§IV-A, §IV-D,
//! §V): an x8 PCIe 5.0 channel has 32 GB/s raw per direction; after PCIe
//! and CXL header overheads, goodput is 26 GB/s in the RX (device→CPU)
//! direction and 13 GB/s in TX (CPU→device). The asymmetric variant
//! repurposes the same 32 pins as 20 RX + 12 TX for 32/10 GB/s goodput.

use coaxial_sim::{ns_to_cycles, Cycle};
use serde::Serialize;

/// Configuration of one CXL channel (link + controller queues).
#[derive(Debug, Clone, Serialize)]
pub struct CxlLinkConfig {
    /// Unloaded one-way latency of a single CXL port crossing, in cycles.
    /// The paper's default is 12.5 ns; its sensitivity study raises the
    /// total 4-crossing budget from 50 ns to 70 ns (17.5 ns per port), and
    /// its OMI comparison lowers it to 10 ns total (2.5 ns per port).
    pub port_latency: Cycle,
    /// Cycles to serialize one 64 B line in the RX direction (read data).
    pub rx_line_cycles: Cycle,
    /// Cycles to serialize one 64 B line in the TX direction (write data).
    pub tx_line_cycles: Cycle,
    /// Cycles a request/ack header occupies its direction of the link.
    /// Headers share flit slots, so this is a fraction of a line transfer;
    /// it consumes bandwidth but is not part of the paper's fixed latency
    /// budget (the port pipeline already accounts for flit handling).
    pub tx_header_cycles: Cycle,
    pub rx_header_cycles: Cycle,
    /// CPU-side request queue depth (per channel).
    pub req_queue_depth: usize,
    /// Device-side buffer between the link and the DDR controller(s).
    pub device_buf_depth: usize,
    /// DDR channels on the Type-3 device behind this link.
    pub ddr_channels_per_device: usize,
    /// Human-readable tag for reports.
    pub name: &'static str,
}

/// Goodput-derived serialization time for 64 bytes, in cycles.
fn line_cycles(goodput_gbs: f64) -> Cycle {
    ns_to_cycles(64.0 / goodput_gbs)
}

impl CxlLinkConfig {
    /// Symmetric x8 CXL channel (8 RX + 8 TX lanes, 32 pins):
    /// 26 GB/s RX, 13 GB/s TX goodput; 50 ns total port latency.
    pub fn x8_symmetric() -> Self {
        Self {
            port_latency: ns_to_cycles(12.5),
            rx_line_cycles: line_cycles(26.0), // 2.46 ns → 6 cycles
            tx_line_cycles: line_cycles(13.0), // 4.92 ns → 12 cycles
            tx_header_cycles: 3,               // ~16 B slot at 13 GB/s
            rx_header_cycles: 2,               // ~16 B slot at 26 GB/s
            req_queue_depth: 64,
            device_buf_depth: 32,
            ddr_channels_per_device: 1,
            name: "x8-sym",
        }
    }

    /// Asymmetric CXL-asym channel (§IV-D): same 32 pins split 20 RX/12 TX
    /// for 32 GB/s RX and 10 GB/s TX goodput. Two DDR controllers per
    /// Type-3 device to exploit the extra read bandwidth.
    pub fn x8_asymmetric() -> Self {
        Self {
            port_latency: ns_to_cycles(12.5),
            rx_line_cycles: line_cycles(32.0), // 2 ns → 5 cycles
            tx_line_cycles: line_cycles(10.0), // 6.4 ns → 16 cycles
            tx_header_cycles: 4,
            rx_header_cycles: 2,
            req_queue_depth: 64,
            device_buf_depth: 32,
            ddr_channels_per_device: 2,
            name: "x8-asym",
        }
    }

    /// Override the total unloaded CXL latency budget (the paper's §VI-D
    /// sensitivity study: 50 ns default, 70 ns pessimistic, 10 ns OMI-like).
    pub fn with_total_port_latency_ns(mut self, total_ns: f64) -> Self {
        self.port_latency = ns_to_cycles(total_ns / 4.0);
        self
    }

    /// Unloaded read-latency adder of this link (4 port crossings + read
    /// data serialization), in cycles. Paper: 52.5 ns for x8 symmetric.
    pub fn unloaded_read_adder(&self) -> Cycle {
        4 * self.port_latency + self.rx_line_cycles
    }

    /// Unloaded write-latency adder (4 crossings + write data
    /// serialization). Paper: 55.5 ns for x8 symmetric.
    pub fn unloaded_write_adder(&self) -> Cycle {
        4 * self.port_latency + self.tx_line_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_sim::cycles_to_ns;

    #[test]
    fn symmetric_matches_paper_latency_budget() {
        let c = CxlLinkConfig::x8_symmetric();
        let rd = cycles_to_ns(c.unloaded_read_adder());
        let wr = cycles_to_ns(c.unloaded_write_adder());
        // Paper §V: 52.5 ns reads, 55.5 ns writes (we round cycles up).
        assert!((52.0..54.0).contains(&rd), "read adder = {rd} ns");
        assert!((54.5..56.5).contains(&wr), "write adder = {wr} ns");
    }

    #[test]
    fn asymmetric_trades_tx_for_rx() {
        let s = CxlLinkConfig::x8_symmetric();
        let a = CxlLinkConfig::x8_asymmetric();
        assert!(a.rx_line_cycles < s.rx_line_cycles, "asym reads faster");
        assert!(a.tx_line_cycles > s.tx_line_cycles, "asym writes slower");
        assert_eq!(a.ddr_channels_per_device, 2);
    }

    #[test]
    fn latency_override_scales_ports() {
        let c = CxlLinkConfig::x8_symmetric().with_total_port_latency_ns(70.0);
        let total = cycles_to_ns(4 * c.port_latency);
        assert!((69.9..71.0).contains(&total), "total = {total} ns");
        let omi = CxlLinkConfig::x8_symmetric().with_total_port_latency_ns(10.0);
        assert!(cycles_to_ns(4 * omi.port_latency) < 11.0);
    }
}
