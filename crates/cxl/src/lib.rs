//! CXL interconnect and Type-3 memory device models.
//!
//! COAXIAL attaches every DDR channel behind a CXL link (paper §IV,
//! Fig. 3b). The model follows the paper's §V "CXL performance modeling":
//!
//! * each CXL **port** adds 12.5 ns of unloaded one-way latency
//!   (flit packing, encode/decode, packet processing — PLDA/Intel CXL 2.0
//!   controller numbers \[47\], \[51\]); a memory access crosses four ports
//!   (CPU egress, device ingress, device egress, CPU ingress) = 50 ns;
//! * the PCIe x8 bus serializes data at the **goodput** the paper derives
//!   after header overheads: 26 GB/s RX (device→CPU) and 13 GB/s TX
//!   (CPU→device) for a symmetric x8 channel, or 32/10 GB/s for the
//!   asymmetric 20-RX/12-TX-pin CXL-asym variant (§IV-D);
//! * the CXL controller keeps finite message queues in both directions, so
//!   queuing effects at the interface are captured (§V).
//!
//! [`CxlChannel`] is one link plus its Type-3 device (1 or 2 DDR channels
//! behind an unmodified DDR5 controller). [`CxlMemory`] aggregates several
//! channels into a [`coaxial_dram::MemoryBackend`] for the system model.

// No unsafe anywhere in this crate (lint U01 audit); keep it that way.
#![forbid(unsafe_code)]

pub mod channel;
pub mod config;
pub mod memory;

pub use channel::CxlChannel;
pub use config::CxlLinkConfig;
pub use memory::CxlMemory;
