//! A COAXIAL memory system: several CXL channels behind one
//! [`MemoryBackend`] interface. This is what replaces the baseline's
//! direct-attached [`coaxial_dram::MultiChannel`] in a COAXIAL server.

use coaxial_dram::{ChannelStats, DramConfig, MemRequest, MemResponse, MemoryBackend};
use coaxial_sim::Cycle;

use crate::channel::CxlChannel;
use crate::config::CxlLinkConfig;

/// N CXL channels with line-granularity interleaving across them.
pub struct CxlMemory {
    channels: Vec<CxlChannel>,
    now: Cycle,
}

impl CxlMemory {
    pub fn new(link_cfg: &CxlLinkConfig, dram_cfg: &DramConfig, channels: usize) -> Self {
        assert!(channels > 0);
        Self {
            channels: (0..channels).map(|_| CxlChannel::new(link_cfg.clone(), dram_cfg)).collect(),
            now: 0,
        }
    }

    #[inline]
    fn route(&self, line_addr: u64) -> (usize, u64) {
        let n = self.channels.len() as u64;
        (coaxial_sim::idx(line_addr % n), line_addr / n)
    }

    /// Aggregated DDR stats across all Type-3 devices.
    pub fn stats(&self) -> ChannelStats {
        let mut it = self.channels.iter();
        let mut st = it.next().expect("≥1 channel").ddr_stats();
        for c in it {
            st.merge(&c.ddr_stats());
        }
        st
    }

    /// Mean TX/RX link utilization across channels.
    pub fn link_utilization(&self) -> (f64, f64) {
        let n = self.channels.len() as f64;
        let (mut tx, mut rx) = (0.0, 0.0);
        for c in &self.channels {
            let (t, r) = c.link_utilization(c.window_cycles());
            tx += t;
            rx += r;
        }
        (tx / n, rx / n)
    }

    pub fn channels(&self) -> &[CxlChannel] {
        &self.channels
    }

    /// Combined peak DDR bandwidth behind the links, GB/s.
    pub fn peak_ddr_bandwidth_gbs(&self, dram_cfg: &DramConfig) -> f64 {
        dram_cfg.peak_bandwidth_gbs() * self.ddr_channel_count() as f64
    }

    /// Export per-channel link + device-DDR metrics under `prefix`
    /// (`{prefix}.ch{i}.link.*` and `{prefix}.ch{i}.ddr.*`).
    pub fn export_metrics(&self, reg: &mut coaxial_telemetry::MetricsRegistry, prefix: &str) {
        let mut credit_wait = 0u64;
        let mut credit_occ = 0.0f64;
        for (i, c) in self.channels.iter().enumerate() {
            let (tx, rx) = c.link_utilization(c.window_cycles());
            reg.set_gauge(&format!("{prefix}.ch{i}.link.tx_utilization"), tx);
            reg.set_gauge(&format!("{prefix}.ch{i}.link.rx_utilization"), rx);
            reg.set_counter(
                &format!("{prefix}.ch{i}.port.credit_wait_cycles"),
                c.credit_wait_cycles,
            );
            reg.set_gauge(
                &format!("{prefix}.ch{i}.port.credit_occupancy"),
                c.credit_occupancy_mean(),
            );
            credit_wait += c.credit_wait_cycles;
            credit_occ += c.credit_occupancy_mean();
            c.ddr_stats().export_metrics(reg, &format!("{prefix}.ch{i}.ddr"));
        }
        let (tx, rx) = self.link_utilization();
        reg.set_gauge(&format!("{prefix}.link.tx_utilization"), tx);
        reg.set_gauge(&format!("{prefix}.link.rx_utilization"), rx);
        // Aggregate link-pressure signal (ROADMAP telemetry item): cycles
        // TX heads spent blocked on flow-control credits alone.
        reg.set_counter("cxl.port.credit_wait_cycles", credit_wait);
        // Mean outstanding credits per link: the occupancy companion to the
        // wait counter — how full the device buffer ran, not just whether
        // the TX head ever starved.
        reg.set_gauge("cxl.port.credit_occupancy", credit_occ / self.channels.len() as f64);
        self.stats().export_metrics(reg, &format!("{prefix}.ddr_total"));
    }
}

impl MemoryBackend for CxlMemory {
    fn try_enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let (c, local) = self.route(req.line_addr);
        let mut local_req = req;
        local_req.line_addr = local;
        self.channels[c].try_enqueue(local_req).map_err(|mut r| {
            r.line_addr = req.line_addr;
            r
        })
    }

    fn tick(&mut self, now: Cycle) {
        self.now = now;
        for c in &mut self.channels {
            c.tick(now);
        }
    }

    fn pop_response(&mut self, _now: Cycle) -> Option<MemResponse> {
        let n = self.channels.len() as u64;
        for (i, c) in self.channels.iter_mut().enumerate() {
            if let Some(mut r) = c.pop_response() {
                r.line_addr = r.line_addr * n + i as u64;
                return Some(r);
            }
        }
        None
    }

    fn ddr_channel_count(&self) -> usize {
        self.channels.iter().map(|c| c.ddr_channel_count()).sum()
    }

    fn ddr_stats(&self) -> ChannelStats {
        self.stats()
    }

    fn reset_stats(&mut self, now: Cycle) {
        for c in &mut self.channels {
            c.reset_stats(now);
        }
    }

    fn peak_bandwidth_gbs(&self) -> f64 {
        coaxial_dram::DramConfig::ddr5_4800().peak_bandwidth_gbs() * self.ddr_channel_count() as f64
    }

    fn link_utilization(&self) -> Option<(f64, f64)> {
        Some(CxlMemory::link_utilization(self))
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        self.channels.iter().map(|c| c.next_event(now)).min().unwrap_or(now + 1)
    }

    fn export_metrics(&self, reg: &mut coaxial_telemetry::MetricsRegistry, prefix: &str) {
        CxlMemory::export_metrics(self, reg, prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mem: &mut CxlMemory, reqs: Vec<MemRequest>, limit: Cycle) -> Vec<MemResponse> {
        let mut pending: std::collections::VecDeque<_> = reqs.into();
        let total = pending.len();
        let mut out = Vec::new();
        for now in 0..limit {
            mem.tick(now);
            while let Some(&r) = pending.front() {
                if mem.try_enqueue(MemRequest { issued_at: now, ..r }).is_ok() {
                    pending.pop_front();
                } else {
                    break;
                }
            }
            while let Some(r) = mem.pop_response(now) {
                out.push(r);
            }
            if out.len() == total {
                break;
            }
        }
        out
    }

    #[test]
    fn four_channel_memory_reports_four_ddr_channels() {
        let m = CxlMemory::new(&CxlLinkConfig::x8_symmetric(), &DramConfig::ddr5_4800(), 4);
        assert_eq!(m.ddr_channel_count(), 4);
        let asym = CxlMemory::new(&CxlLinkConfig::x8_asymmetric(), &DramConfig::ddr5_4800(), 4);
        assert_eq!(asym.ddr_channel_count(), 8, "asym devices carry 2 DDR channels");
    }

    #[test]
    fn addresses_round_trip_through_two_levels_of_interleave() {
        let mut m = CxlMemory::new(&CxlLinkConfig::x8_asymmetric(), &DramConfig::ddr5_4800(), 4);
        let addrs: Vec<u64> = (0..64).map(|i| i * 7 + 5).collect();
        let reqs: Vec<_> =
            addrs.iter().enumerate().map(|(i, &a)| MemRequest::read(i as u64, a, 0)).collect();
        let resps = run(&mut m, reqs, 1_000_000);
        let mut got: Vec<u64> = resps.iter().map(|r| r.line_addr).collect();
        got.sort_unstable();
        let mut want = addrs;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn more_channels_reduce_loaded_latency() {
        // Saturating random read stream against 1 vs 4 CXL channels.
        let reqs: Vec<_> =
            (0..600u64).map(|i| MemRequest::read(i, i * 1031 % 100_000, 0)).collect();
        let mut m1 = CxlMemory::new(&CxlLinkConfig::x8_symmetric(), &DramConfig::ddr5_4800(), 1);
        let mut m4 = CxlMemory::new(&CxlLinkConfig::x8_symmetric(), &DramConfig::ddr5_4800(), 4);
        let r1 = run(&mut m1, reqs.clone(), 5_000_000);
        let r4 = run(&mut m4, reqs, 5_000_000);
        assert_eq!(r1.len(), 600);
        assert_eq!(r4.len(), 600);
        let avg = |rs: &[MemResponse]| {
            rs.iter().map(|r| r.total_cycles() as f64).sum::<f64>() / rs.len() as f64
        };
        assert!(
            avg(&r4) < avg(&r1) * 0.8,
            "4-channel avg {} should beat 1-channel avg {}",
            avg(&r4),
            avg(&r1)
        );
    }
}
