//! Experiment runners — one per table/figure of the paper's evaluation.
//!
//! Every function here regenerates the data behind a specific paper
//! element; the `coaxial-bench` crate formats and prints them. All
//! runners accept a [`Budget`] so callers can trade fidelity for runtime
//! (the defaults follow `COAXIAL_INSTR`/`COAXIAL_WARMUP` or the built-in
//! laptop-scale budget).
//!
//! Each runner builds a flat batch of [`RunSpec`]s and dispatches it
//! through [`crate::runner::run_all`], so independent simulations spread
//! across host cores (`COAXIAL_JOBS`). Reports come back keyed by spec
//! index, which keeps every row assembly below deterministic.

use coaxial_cache::{CalmPolicy, PrefetchPolicy};
use coaxial_dram::{Channel, DramConfig, MemoryBackend};
use coaxial_sim::Cycle;
use coaxial_telemetry::TelemetryRecorder;
use coaxial_workloads::{mixes, PoissonTraffic, Workload};
use serde::Serialize;

use crate::config::SystemConfig;
use crate::runner::{self, RunSpec};
use crate::server::{RunReport, Simulation};

/// Instruction budget for one run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    pub instructions: u64,
    pub warmup: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Self {
            instructions: coaxial_sim::env::instructions(crate::server::DEFAULT_INSTRUCTIONS),
            warmup: coaxial_sim::env::warmup(crate::server::DEFAULT_WARMUP),
        }
    }
}

impl Budget {
    pub fn quick() -> Self {
        Self { instructions: 6_000, warmup: 1_000 }
    }

    /// A [`RunSpec`] for one homogeneous run under this budget.
    pub fn spec(&self, config: SystemConfig, w: &'static Workload) -> RunSpec {
        RunSpec::homogeneous(config, w, self.instructions, self.warmup)
    }

    /// Execute a single homogeneous run inline (no job pool) — handy for
    /// tests and one-off probes; batch work should go through
    /// [`crate::runner::run_all`].
    pub fn run(&self, config: SystemConfig, w: &'static Workload) -> RunReport {
        Simulation::new(config, w)
            .instructions_per_core(self.instructions)
            .warmup(self.warmup)
            .run()
    }
}

// ───────────────────────── Fig. 2a ──────────────────────────

/// One point of the load-latency curve.
#[derive(Debug, Clone, Serialize)]
pub struct LoadLatencyPoint {
    pub target_utilization: f64,
    pub achieved_utilization: f64,
    pub avg_ns: f64,
    pub p90_ns: f64,
}

/// Fig. 2a: drive one DDR5-4800 channel with Poisson random traffic at
/// each target utilization and measure average and p90 latency.
pub fn fig2a_load_latency(utilizations: &[f64], horizon_cycles: Cycle) -> Vec<LoadLatencyPoint> {
    // Not a `Simulation`, so this uses the generic map rather than
    // `run_all`: each utilization point drives its own channel.
    runner::parallel_map(utilizations, |&u| {
        let mut ch = Channel::new(DramConfig::ddr5_4800());
        // 2:1 R:W as in the paper's framing of typical traffic.
        let mut gen = PoissonTraffic::new(u, 38.4, 0.33, 42);
        let mut backlog: std::collections::VecDeque<_> = Default::default();
        for now in 0..horizon_cycles {
            ch.tick(now);
            backlog.extend(gen.arrivals(now));
            while let Some(&req) = backlog.front() {
                match ch.try_enqueue(req) {
                    Ok(()) => {
                        backlog.pop_front();
                    }
                    Err(_) => break,
                }
            }
            while ch.pop_response(now).is_some() {}
        }
        let st = ch.stats();
        LoadLatencyPoint {
            target_utilization: u,
            achieved_utilization: st.bandwidth_gbs() / 38.4,
            avg_ns: coaxial_sim::cycles_f64_to_ns(ch.latency_hist.mean()),
            p90_ns: coaxial_sim::cycles_f64_to_ns(ch.latency_hist.percentile(90.0) as f64),
        }
    })
}

// ───────────────────────── Fig. 2b / Table IV / Fig. 9 ──────

/// One baseline workload characterization row (Figs. 2b, 9; Table IV).
#[derive(Debug, Clone, Serialize)]
pub struct BaselineRow {
    pub workload: String,
    pub ipc: f64,
    pub mpki: f64,
    /// (on-chip, queuing, DRAM service, CXL) in ns. CXL is 0 here.
    pub breakdown_ns: (f64, f64, f64, f64),
    pub utilization: f64,
    pub read_gbs: f64,
    pub write_gbs: f64,
    pub paper_ipc: f64,
    pub paper_mpki: u32,
}

/// Figs. 2b & 9 and Table IV all come from baseline runs of every workload.
pub fn baseline_characterization(budget: Budget) -> Vec<BaselineRow> {
    let specs: Vec<RunSpec> =
        Workload::all().iter().map(|w| budget.spec(SystemConfig::ddr_baseline(), w)).collect();
    Workload::all()
        .iter()
        .zip(runner::run_all(&specs))
        .map(|(w, r)| BaselineRow {
            workload: w.name.to_string(),
            ipc: r.ipc,
            mpki: r.mpki,
            breakdown_ns: r.breakdown_ns,
            utilization: r.utilization,
            read_gbs: r.read_gbs,
            write_gbs: r.write_gbs,
            paper_ipc: w.paper_ipc,
            paper_mpki: w.paper_mpki,
        })
        .collect()
}

// ───────────────────────── Fig. 5 ───────────────────────────

/// One per-workload comparison row (Fig. 5, and reused by Figs. 8/10).
#[derive(Debug, Clone, Serialize)]
pub struct CompareRow {
    pub workload: String,
    pub speedup: f64,
    pub base: RunReport,
    pub coax: RunReport,
}

/// Run baseline and one COAXIAL config across all workloads.
pub fn compare_all(coax_cfg: impl Fn() -> SystemConfig, budget: Budget) -> Vec<CompareRow> {
    let specs: Vec<RunSpec> = Workload::all()
        .iter()
        .flat_map(|w| [budget.spec(SystemConfig::ddr_baseline(), w), budget.spec(coax_cfg(), w)])
        .collect();
    let mut reports = runner::run_all(&specs).into_iter();
    Workload::all()
        .iter()
        .map(|w| {
            let base = reports.next().expect("one baseline report per workload");
            let coax = reports.next().expect("one COAXIAL report per workload");
            CompareRow {
                workload: w.name.to_string(),
                speedup: coax.speedup_over(&base),
                base,
                coax,
            }
        })
        .collect()
}

/// Fig. 5: COAXIAL-4x vs. the DDR baseline across all 36 workloads.
pub fn fig5_main(budget: Budget) -> Vec<CompareRow> {
    compare_all(SystemConfig::coaxial_4x, budget)
}

/// Geometric-mean speedup of a comparison set.
pub fn geomean_speedup(rows: &[CompareRow]) -> f64 {
    geomean(rows.iter().map(|r| r.speedup))
}

pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for v in values {
        if v > 0.0 {
            sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

// ───────────────────────── Fig. 6 ───────────────────────────

/// One workload-mix result (Fig. 6).
#[derive(Debug, Clone, Serialize)]
pub struct MixRow {
    pub mix_id: u64,
    pub workloads: Vec<String>,
    /// IPC-ratio speedup (COAXIAL over baseline, mean per-core IPC).
    pub speedup: f64,
    /// Weighted-speedup ratio: Σ IPC_shared/IPC_alone on COAXIAL divided
    /// by the same sum on the baseline (the paper artifact's alternative
    /// multi-program metric; `None` unless requested).
    pub weighted_speedup_ratio: Option<f64>,
}

/// Fig. 6: ten random 12-workload mixes, COAXIAL-4x vs. baseline.
/// With `weighted`, also computes the weighted-speedup ratio, which needs
/// one isolated (single-active-core) run per distinct (workload, system)
/// pair — cached across mixes.
pub fn fig6_mixes_full(count: u64, budget: Budget, weighted: bool) -> Vec<MixRow> {
    use std::collections::{HashMap, HashSet};
    let mixes_v: Vec<Vec<&'static Workload>> = (0..count).map(|id| mixes::mix(id, 12)).collect();

    // Shared runs: baseline + COAXIAL per mix, one flat batch.
    let specs: Vec<RunSpec> = mixes_v
        .iter()
        .flat_map(|m| {
            [
                RunSpec::mix(SystemConfig::ddr_baseline(), m, budget.instructions, budget.warmup),
                RunSpec::mix(SystemConfig::coaxial_4x(), m, budget.instructions, budget.warmup),
            ]
        })
        .collect();
    let shared = runner::run_all(&specs);

    // Isolated runs for the weighted metric: one per distinct
    // (workload, system) pair across all mixes, also batched. The map and
    // the dedup set below are keyed-lookup only — never iterated (lint
    // D01); report rows come from the ordered `mixes_v` walk.
    let alone: HashMap<(&str, bool), f64> = if weighted {
        let mut seen = HashSet::new();
        let mut distinct: Vec<(&'static Workload, bool)> = Vec::new();
        for m in &mixes_v {
            for &w in m {
                for coax in [false, true] {
                    if seen.insert((w.name, coax)) {
                        distinct.push((w, coax));
                    }
                }
            }
        }
        let alone_specs: Vec<RunSpec> = distinct
            .iter()
            .map(|&(w, coax)| {
                let cfg =
                    if coax { SystemConfig::coaxial_4x() } else { SystemConfig::ddr_baseline() };
                budget.spec(cfg.with_active_cores(1), w)
            })
            .collect();
        distinct
            .iter()
            .zip(runner::run_all(&alone_specs))
            .map(|(&(w, coax), r)| ((w.name, coax), r.ipc))
            .collect()
    } else {
        HashMap::new()
    };

    mixes_v
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let (base, coax) = (&shared[2 * i], &shared[2 * i + 1]);
            let weighted_speedup_ratio = weighted.then(|| {
                let ws = |r: &RunReport, is_coax: bool| -> f64 {
                    r.per_core_ipc
                        .iter()
                        .zip(m.iter())
                        .map(|(&shared, w)| shared / alone[&(w.name, is_coax)].max(1e-9))
                        .sum::<f64>()
                };
                ws(coax, true) / ws(base, false).max(1e-9)
            });
            MixRow {
                mix_id: i as u64,
                workloads: m.iter().map(|w| w.name.to_string()).collect(),
                speedup: coax.speedup_over(base),
                weighted_speedup_ratio,
            }
        })
        .collect()
}

/// Fig. 6 with the default (IPC-ratio only) metric.
pub fn fig6_mixes(count: u64, budget: Budget) -> Vec<MixRow> {
    fig6_mixes_full(count, budget, false)
}

// ───────────────────────── Fig. 7 ───────────────────────────

/// CALM mechanisms evaluated in Fig. 7, in the paper's bar order.
pub fn calm_mechanisms() -> Vec<CalmPolicy> {
    vec![
        CalmPolicy::MapI,
        CalmPolicy::CalmR { r: 0.5 },
        CalmPolicy::CalmR { r: 0.6 },
        CalmPolicy::CalmR { r: 0.7 },
        CalmPolicy::Ideal,
    ]
}

/// One (system, mechanism) × workload cell of Fig. 7.
#[derive(Debug, Clone, Serialize)]
pub struct CalmRow {
    pub workload: String,
    pub system: String,
    pub mechanism: String,
    /// Speedup vs. the same system with serial LLC/memory access.
    pub speedup_vs_serial: f64,
    pub false_pos_per_mem_access: f64,
    pub false_neg_per_llc_miss: f64,
}

/// Fig. 7: evaluate every CALM mechanism on both systems for the given
/// workloads (the paper shows 4 named workloads + the all-36 average).
pub fn fig7_calm(workload_names: &[&str], budget: Budget) -> Vec<CalmRow> {
    type ConfigFn = fn() -> SystemConfig;
    let systems: [(&str, ConfigFn); 2] = [
        ("baseline", SystemConfig::ddr_baseline as ConfigFn),
        ("COAXIAL", SystemConfig::coaxial_4x as ConfigFn),
    ];
    let mechs = calm_mechanisms();

    // One serial anchor + every mechanism, per (workload, system) — all
    // independent, so the whole grid is one batch.
    let mut specs = Vec::new();
    for name in workload_names {
        let w = Workload::by_name(name).expect("workload exists");
        for (_, mk) in systems {
            specs.push(budget.spec(mk().with_calm(CalmPolicy::Serial), w));
            for &mech in &mechs {
                specs.push(budget.spec(mk().with_calm(mech), w));
            }
        }
    }
    let mut reports = runner::run_all(&specs).into_iter();

    let mut rows = Vec::new();
    for name in workload_names {
        let w = Workload::by_name(name).expect("workload exists");
        for (sys_name, _) in systems {
            let serial = reports.next().expect("serial anchor report");
            for &mech in &mechs {
                let r = reports.next().expect("mechanism report");
                rows.push(CalmRow {
                    workload: w.name.to_string(),
                    system: sys_name.to_string(),
                    mechanism: mech.label(),
                    speedup_vs_serial: r.speedup_over(&serial),
                    false_pos_per_mem_access: r.calm.false_pos_per_mem_access(),
                    false_neg_per_llc_miss: r.calm.false_neg_per_llc_miss(),
                });
            }
        }
    }
    rows
}

// ───────────────────────── Fig. 8 ───────────────────────────

/// One workload's speedups across COAXIAL variants (Fig. 8).
#[derive(Debug, Clone, Serialize)]
pub struct VariantRow {
    pub workload: String,
    pub coaxial_2x: f64,
    pub coaxial_4x: f64,
    pub coaxial_5x: f64,
    pub coaxial_asym: f64,
}

/// Fig. 8: COAXIAL-2x / -4x / -asym vs. the DDR baseline.
pub fn fig8_variants(budget: Budget) -> Vec<VariantRow> {
    let specs: Vec<RunSpec> = Workload::all()
        .iter()
        .flat_map(|w| {
            [
                budget.spec(SystemConfig::ddr_baseline(), w),
                budget.spec(SystemConfig::coaxial_2x(), w),
                budget.spec(SystemConfig::coaxial_4x(), w),
                budget.spec(SystemConfig::coaxial_5x(), w),
                budget.spec(SystemConfig::coaxial_asym(), w),
            ]
        })
        .collect();
    let reports = runner::run_all(&specs);
    Workload::all()
        .iter()
        .zip(reports.chunks_exact(5))
        .map(|(w, rs)| {
            let base = &rs[0];
            VariantRow {
                workload: w.name.to_string(),
                coaxial_2x: rs[1].speedup_over(base),
                coaxial_4x: rs[2].speedup_over(base),
                coaxial_5x: rs[3].speedup_over(base),
                coaxial_asym: rs[4].speedup_over(base),
            }
        })
        .collect()
}

// ───────────────────────── Fig. 10 ──────────────────────────

/// One workload's speedups for each CXL latency premium (Fig. 10 + §VII).
#[derive(Debug, Clone, Serialize)]
pub struct LatencyRow {
    pub workload: String,
    /// (latency_ns, speedup) in the order requested.
    pub speedups: Vec<(f64, f64)>,
}

/// Fig. 10: COAXIAL-4x speedup under different unloaded CXL latency
/// budgets (the paper's 50/70 ns, plus §VII's 10 ns OMI projection).
pub fn fig10_latency_sensitivity(latencies_ns: &[f64], budget: Budget) -> Vec<LatencyRow> {
    let per_wl = 1 + latencies_ns.len();
    let specs: Vec<RunSpec> = Workload::all()
        .iter()
        .flat_map(|w| {
            std::iter::once(budget.spec(SystemConfig::ddr_baseline(), w)).chain(
                latencies_ns.iter().map(move |&ns| {
                    budget.spec(SystemConfig::coaxial_4x().with_cxl_latency_ns(ns), w)
                }),
            )
        })
        .collect();
    let reports = runner::run_all(&specs);
    Workload::all()
        .iter()
        .zip(reports.chunks_exact(per_wl))
        .map(|(w, rs)| {
            let base = &rs[0];
            let speedups = latencies_ns
                .iter()
                .zip(&rs[1..])
                .map(|(&ns, r)| (ns, r.speedup_over(base)))
                .collect();
            LatencyRow { workload: w.name.to_string(), speedups }
        })
        .collect()
}

// ───────────────────────── Fig. 11 ──────────────────────────

/// One workload's speedups as a function of active cores (Fig. 11).
#[derive(Debug, Clone, Serialize)]
pub struct UtilizationRow {
    pub workload: String,
    /// (active_cores, speedup vs. baseline at same active cores).
    pub speedups: Vec<(usize, f64)>,
}

/// Fig. 11: vary the number of active cores; normalize COAXIAL to the
/// baseline *at the same utilization*.
pub fn fig11_core_utilization(active: &[usize], budget: Budget) -> Vec<UtilizationRow> {
    let specs: Vec<RunSpec> = Workload::all()
        .iter()
        .flat_map(|w| {
            active.iter().flat_map(move |&n| {
                [
                    budget.spec(SystemConfig::ddr_baseline().with_active_cores(n), w),
                    budget.spec(SystemConfig::coaxial_4x().with_active_cores(n), w),
                ]
            })
        })
        .collect();
    let reports = runner::run_all(&specs);
    Workload::all()
        .iter()
        .zip(reports.chunks_exact(2 * active.len()))
        .map(|(w, rs)| {
            let speedups = active
                .iter()
                .zip(rs.chunks_exact(2))
                .map(|(&n, pair)| (n, pair[1].speedup_over(&pair[0])))
                .collect();
            UtilizationRow { workload: w.name.to_string(), speedups }
        })
        .collect()
}

// ─────────────────── Telemetry latency breakdown ────────────────────

/// One system's fine-grained L2-miss latency attribution
/// (`coaxial breakdown`; the telemetry-subsystem refinement of the
/// paper's Fig. 2b four-way split).
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    pub config_name: String,
    pub workload: String,
    /// (component label, mean ns over *all* L2 misses in the measured
    /// window). Summing this column reproduces `total_ns` exactly — the
    /// conservation contract of [`coaxial_telemetry::MissRecord`].
    pub components_ns: Vec<(String, f64)>,
    /// Mean end-to-end L2-miss latency, ns.
    pub total_ns: f64,
    /// The same data folded into the paper's coarse categories:
    /// (on-chip, queuing, DRAM service, CXL interface), ns.
    pub paper_ns: (f64, f64, f64, f64),
    /// Attributed requests (primary L2 misses) in the measured window.
    pub requests: u64,
    pub llc_hits: u64,
    pub calm_requests: u64,
    /// The driver's own mean L2-miss latency, ns — reported alongside so
    /// tables can show the attribution matches the untelemetered number.
    pub report_total_ns: f64,
    pub ipc: f64,
}

/// Run each config on `workload` with a [`TelemetryRecorder`] attached and
/// return per-component latency breakdowns. Runs are independent, so the
/// batch spreads over `COAXIAL_JOBS` like every other sweep.
pub fn latency_breakdown(
    configs: &[SystemConfig],
    workload: &str,
    budget: Budget,
) -> Vec<BreakdownRow> {
    let w = Workload::by_name(workload).expect("workload exists");
    runner::parallel_map(configs, |cfg| {
        let (report, rec, _metrics) = Simulation::new(cfg.clone(), w)
            .instructions_per_core(budget.instructions)
            .warmup(budget.warmup)
            .run_with_telemetry(TelemetryRecorder::new());
        let att = &rec.attribution;
        BreakdownRow {
            config_name: cfg.name.clone(),
            workload: w.name.to_string(),
            components_ns: att
                .mean_ns_rows()
                .into_iter()
                .map(|(c, v)| (c.label().to_string(), v))
                .collect(),
            total_ns: coaxial_telemetry::time::cycles_f64_to_ns(att.total.mean()),
            paper_ns: att.paper_breakdown_ns(),
            requests: att.requests(),
            llc_hits: att.llc_hits,
            calm_requests: att.calm_requests,
            report_total_ns: report.l2_miss_latency_ns,
            ipc: report.ipc,
        }
    })
}

// ───────────────────────── Table V ──────────────────────────

/// Table V inputs: the measured average CPIs of both systems.
#[derive(Debug, Clone, Serialize)]
pub struct Table5Inputs {
    pub baseline_cpi: f64,
    pub coaxial_cpi: f64,
}

/// Compute average CPIs from a Fig. 5 comparison set.
pub fn table5_inputs(rows: &[CompareRow]) -> Table5Inputs {
    let n = rows.len() as f64;
    let base: f64 = rows.iter().map(|r| 1.0 / r.base.ipc.max(1e-9)).sum::<f64>() / n;
    let coax: f64 = rows.iter().map(|r| 1.0 / r.coax.ipc.max(1e-9)).sum::<f64>() / n;
    Table5Inputs { baseline_cpi: base, coaxial_cpi: coax }
}

// ─────────────── Knob-coverage / sensitivity sweeps ───────────────
//
// These sweeps exist so that *every* public fidelity knob in the config
// structs is exercised end to end by at least one experiment — the
// contract coaxial-lint's E02 rule enforces statically (a knob the model
// reads but no experiment varies is untested fidelity: nothing would
// notice if its wiring broke). They double as data sources for the
// `ablations` bench target.

fn named_workloads(names: &[&str]) -> Vec<&'static Workload> {
    names.iter().map(|n| Workload::by_name(n).expect("workload exists")).collect()
}

/// One DRAM speed-grade sensitivity row: every [`coaxial_dram::DramTimings`]
/// parameter scaled together by `factor`.
#[derive(Debug, Clone, Serialize)]
pub struct TimingScaleRow {
    pub factor: f64,
    pub base_geomean_ipc: f64,
    pub coax_geomean_ipc: f64,
}

/// Scale every DDR5 timing parameter by each factor and re-run both
/// systems — the "are the datasheet timings actually load-bearing?"
/// sensitivity check that silicon-validated CXL simulators run against
/// hardware.
pub fn dram_timing_scale(
    factors: &[f64],
    workload_names: &[&str],
    budget: Budget,
) -> Vec<TimingScaleRow> {
    let ws = named_workloads(workload_names);
    let specs: Vec<RunSpec> = factors
        .iter()
        .flat_map(|&f| {
            let dram = DramConfig::ddr5_4800().with_timing_scale(f);
            ws.iter().copied().flat_map(move |w| {
                [
                    budget.spec(SystemConfig::ddr_baseline().with_dram(dram.clone()), w),
                    budget.spec(SystemConfig::coaxial_4x().with_dram(dram.clone()), w),
                ]
            })
        })
        .collect();
    let reports = runner::run_all(&specs);
    factors
        .iter()
        .zip(reports.chunks_exact(2 * ws.len()))
        .map(|(&factor, rs)| TimingScaleRow {
            factor,
            base_geomean_ipc: geomean(rs.chunks_exact(2).map(|p| p[0].ipc)),
            coax_geomean_ipc: geomean(rs.chunks_exact(2).map(|p| p[1].ipc)),
        })
        .collect()
}

/// One slice-size scaling row (beyond the paper's fixed 12-core slice).
#[derive(Debug, Clone, Serialize)]
pub struct CoreScalingRow {
    pub cores: usize,
    pub base_geomean_ipc: f64,
    pub coax_geomean_ipc: f64,
    /// Geomean per-workload COAXIAL speedup at this slice size.
    pub speedup: f64,
}

/// Resize the simulated slice (mesh, LLC banking, and workload sharding
/// all rebuild around the count) and compare both systems at each size.
pub fn core_scaling(
    cores: &[usize],
    workload_names: &[&str],
    budget: Budget,
) -> Vec<CoreScalingRow> {
    let ws = named_workloads(workload_names);
    let specs: Vec<RunSpec> = cores
        .iter()
        .flat_map(|&n| {
            ws.iter().copied().flat_map(move |w| {
                [
                    budget.spec(SystemConfig::ddr_baseline().with_cores(n), w),
                    budget.spec(SystemConfig::coaxial_4x().with_cores(n), w),
                ]
            })
        })
        .collect();
    let reports = runner::run_all(&specs);
    cores
        .iter()
        .zip(reports.chunks_exact(2 * ws.len()))
        .map(|(&n, rs)| CoreScalingRow {
            cores: n,
            base_geomean_ipc: geomean(rs.chunks_exact(2).map(|p| p[0].ipc)),
            coax_geomean_ipc: geomean(rs.chunks_exact(2).map(|p| p[1].ipc)),
            speedup: geomean(rs.chunks_exact(2).map(|p| p[1].speedup_over(&p[0]))),
        })
        .collect()
}

/// One prefetch-policy row, normalized to the no-prefetch run of the same
/// system (the bandwidth-funds-latency-tolerance asymmetry check).
#[derive(Debug, Clone, Serialize)]
pub struct PrefetchRow {
    pub policy: String,
    pub workload: String,
    /// Baseline-system IPC relative to baseline without prefetching.
    pub base_rel_ipc: f64,
    /// COAXIAL-4x IPC relative to COAXIAL-4x without prefetching.
    pub coax_rel_ipc: f64,
}

/// Run each prefetch policy on both systems across the workload set; rows
/// are IPC relative to the matching no-prefetch configuration.
pub fn prefetch_sweep(
    policies: &[PrefetchPolicy],
    workload_names: &[&str],
    budget: Budget,
) -> Vec<PrefetchRow> {
    let ws = named_workloads(workload_names);
    let specs: Vec<RunSpec> = ws
        .iter()
        .copied()
        .flat_map(|w| {
            let mut group = vec![
                budget.spec(SystemConfig::ddr_baseline(), w),
                budget.spec(SystemConfig::coaxial_4x(), w),
            ];
            for &p in policies {
                group.push(budget.spec(SystemConfig::ddr_baseline().with_prefetch(p), w));
                group.push(budget.spec(SystemConfig::coaxial_4x().with_prefetch(p), w));
            }
            group
        })
        .collect();
    let reports = runner::run_all(&specs);
    let group = 2 + 2 * policies.len();
    let mut rows = Vec::new();
    for (w, rs) in ws.iter().zip(reports.chunks_exact(group)) {
        let (base0, coax0) = (rs[0].ipc.max(1e-9), rs[1].ipc.max(1e-9));
        for (pi, p) in policies.iter().enumerate() {
            rows.push(PrefetchRow {
                policy: p.label(),
                workload: w.name.to_string(),
                base_rel_ipc: rs[2 + 2 * pi].ipc / base0,
                coax_rel_ipc: rs[3 + 2 * pi].ipc / coax0,
            });
        }
    }
    rows
}

/// One RNG-seed sensitivity row.
#[derive(Debug, Clone, Serialize)]
pub struct SeedStabilityRow {
    pub seed: u64,
    pub geomean_ipc: f64,
}

/// Re-run COAXIAL-4x under different workload-generation/CALM_R seeds.
/// Same-seed determinism is proven elsewhere (bit-identical sweeps); this
/// measures how much the headline number moves across *different* draws —
/// it should be small, or the figures are measuring the seed.
pub fn seed_stability(
    seeds: &[u64],
    workload_names: &[&str],
    budget: Budget,
) -> Vec<SeedStabilityRow> {
    let ws = named_workloads(workload_names);
    let specs: Vec<RunSpec> = seeds
        .iter()
        .flat_map(|&s| {
            ws.iter().copied().map(move |w| budget.spec(SystemConfig::coaxial_4x().with_seed(s), w))
        })
        .collect();
    let reports = runner::run_all(&specs);
    seeds
        .iter()
        .zip(reports.chunks_exact(ws.len()))
        .map(|(&seed, rs)| SeedStabilityRow {
            seed,
            geomean_ipc: geomean(rs.iter().map(|r| r.ipc)),
        })
        .collect()
}

// ───────────────────────── Interval sampling ─────────────────

/// One workload's full-detail vs interval-sampled comparison.
#[derive(Debug, Clone, Serialize)]
pub struct SamplingRow {
    pub workload: &'static str,
    /// IPC of the conventional full-detail run at the same budget.
    pub full_ipc: f64,
    /// Interval-sampled IPC estimate (mean of per-interval means).
    pub sampled_ipc: f64,
    /// 95 % confidence-interval half-width on `sampled_ipc`.
    pub ci_half: f64,
    pub intervals_run: u64,
    /// Share of the covered horizon executed on the timing model.
    pub detail_fraction: f64,
    /// Whether the full-detail IPC falls inside the sampled estimate's CI.
    pub within_ci: bool,
}

/// Run each workload twice over the same per-core horizon — once in full
/// detail, once interval-sampled (§DESIGN 5i) — and report how close the
/// sampled estimate lands. The differential test suite asserts on this;
/// the experiment exists so the comparison is reproducible from the CLI.
pub fn sampling_accuracy(
    workload_names: &[&str],
    budget: Budget,
    scfg: &crate::sampling::SamplingConfig,
) -> Vec<SamplingRow> {
    let ws = named_workloads(workload_names);
    let full = runner::run_all(
        &ws.iter().copied().map(|w| budget.spec(SystemConfig::coaxial_4x(), w)).collect::<Vec<_>>(),
    );
    ws.iter()
        .zip(full)
        .map(|(w, f)| {
            let sr = Simulation::new(SystemConfig::coaxial_4x(), w)
                .instructions_per_core(budget.instructions)
                .warmup(budget.warmup)
                .run_sampled(scfg);
            let s = sr.sampling;
            let covered = s.detail_instructions + s.fast_forward_instructions;
            SamplingRow {
                workload: w.name,
                full_ipc: f.ipc,
                sampled_ipc: s.ipc_mean,
                ci_half: s.ipc_ci_half,
                intervals_run: s.intervals_run,
                detail_fraction: if covered == 0 {
                    1.0
                } else {
                    #[allow(clippy::cast_precision_loss)]
                    {
                        s.detail_instructions as f64 / covered as f64
                    }
                },
                within_ci: (f.ipc - s.ipc_mean).abs() <= s.ipc_ci_half,
            }
        })
        .collect()
}

// ───────────────────────── Named dispatch ────────────────────

/// Experiment names accepted by [`run_named`], in `coaxial exp` help order.
pub const EXPERIMENT_NAMES: &[&str] = &[
    "fig2a",
    "baseline",
    "fig5",
    "fig6",
    "fig6-weighted",
    "fig7",
    "fig8",
    "fig10",
    "fig11",
    "dram-timing",
    "core-scaling",
    "prefetch",
    "seeds",
    "sampling",
];

fn debug_rows<T: std::fmt::Debug>(rows: &[T]) -> String {
    rows.iter().map(|r| format!("{r:?}")).collect::<Vec<_>>().join("\n")
}

/// Run the named experiment at `budget` and render its rows as text — the
/// `coaxial exp <name>` entry point. Every public runner in this module
/// must stay reachable from here or a bespoke subcommand (lint E05
/// enforces that workspace-wide), so an experiment is not "done" until it
/// has a name. Returns `None` for an unknown name; see
/// [`EXPERIMENT_NAMES`].
///
/// Arguments beyond the budget use laptop-scale defaults — these arms are
/// smoke-runnable entry points, not the full paper sweeps (the
/// `coaxial-bench` targets own those).
pub fn run_named(name: &str, budget: Budget) -> Option<String> {
    Some(match name {
        "fig2a" => debug_rows(&fig2a_load_latency(&[0.2, 0.4, 0.6, 0.8], 200_000)),
        "baseline" => debug_rows(&baseline_characterization(budget)),
        "fig5" => {
            let cmp = fig5_main(budget);
            let t5 = table5_inputs(&cmp);
            let lines: Vec<String> = cmp
                .iter()
                .map(|r| format!("{:<15} speedup {:.3}", r.workload, r.speedup))
                .collect();
            format!("{}\ngeomean speedup {:.3}\n{t5:?}", lines.join("\n"), geomean_speedup(&cmp))
        }
        "fig6" => debug_rows(&fig6_mixes(4, budget)),
        "fig6-weighted" => debug_rows(&fig6_mixes_full(2, budget, true)),
        "fig7" => {
            let mechs: Vec<String> =
                calm_mechanisms().iter().map(|m| m.label().to_string()).collect();
            format!(
                "mechanisms: {}\n{}",
                mechs.join(", "),
                debug_rows(&fig7_calm(&["mcf", "stream-add"], budget))
            )
        }
        "fig8" => debug_rows(&fig8_variants(budget)),
        "fig10" => debug_rows(&fig10_latency_sensitivity(&[10.0, 50.0, 90.0], budget)),
        "fig11" => debug_rows(&fig11_core_utilization(&[4, 8, 12], budget)),
        "dram-timing" => {
            let rows = dram_timing_scale(&[0.75, 1.0, 1.5], &["stream-add", "mcf"], budget);
            format!(
                "{}\ncoax geomean of geomeans {:.3}",
                debug_rows(&rows),
                geomean(rows.iter().map(|r| r.coax_geomean_ipc))
            )
        }
        "core-scaling" => debug_rows(&core_scaling(&[6, 12], &["mcf"], budget)),
        "prefetch" => debug_rows(&prefetch_sweep(
            &[PrefetchPolicy::NextLine { degree: 2 }],
            &["stream-add"],
            budget,
        )),
        "seeds" => debug_rows(&seed_stability(&[1, 2, 3], &["mcf"], budget)),
        "sampling" => {
            // Laptop-scale interval shape; warm == measure per the bias
            // calibration in the sampling module docs.
            let scfg = crate::sampling::SamplingConfig {
                intervals: 5,
                measure: 2_000,
                warm: 2_000,
                ci_target: 0.0,
            };
            debug_rows(&sampling_accuracy(&["mcf", "stream-add"], budget, &scfg))
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_latency_grows_with_load() {
        let pts = fig2a_load_latency(&[0.1, 0.5, 0.8], 300_000);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].avg_ns < pts[1].avg_ns);
        assert!(pts[1].avg_ns < pts[2].avg_ns);
        // In the pre-saturation region, p90 grows faster than the mean
        // (paper Fig. 2a: queuing shows up in the tail first).
        let tail_growth = pts[1].p90_ns / pts[0].p90_ns;
        let mean_growth = pts[1].avg_ns / pts[0].avg_ns;
        assert!(tail_growth > mean_growth, "tail {tail_growth:.2}x vs mean {mean_growth:.2}x");
        // Unloaded latency is DRAM-like (tens of ns).
        assert!(pts[0].avg_ns > 15.0 && pts[0].avg_ns < 80.0, "{}", pts[0].avg_ns);
    }

    #[test]
    fn run_named_dispatches_known_names_only() {
        assert!(run_named("not-an-experiment", Budget::quick()).is_none());
        let out = run_named("fig2a", Budget::quick()).expect("fig2a is dispatchable");
        assert!(out.contains("LoadLatencyPoint"), "{out}");
    }

    #[test]
    fn geomean_of_constants_is_constant() {
        assert!((geomean([2.0, 2.0, 2.0].into_iter()) - 2.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0].into_iter()) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quick_fig5_subset_shows_bandwidth_wins() {
        // Only the stream workloads, tiny budget — shape check.
        let budget = Budget::quick();
        let w = Workload::by_name("stream-add").unwrap();
        let base = budget.run(SystemConfig::ddr_baseline(), w);
        let coax = budget.run(SystemConfig::coaxial_4x(), w);
        assert!(coax.speedup_over(&base) > 1.2);
    }

    #[test]
    fn slower_dram_timings_lower_ipc() {
        let rows = dram_timing_scale(&[1.0, 2.0], &["stream-add"], Budget::quick());
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].base_geomean_ipc < rows[0].base_geomean_ipc,
            "doubling every DDR5 timing must hurt a stream workload: {rows:#?}"
        );
    }

    #[test]
    fn core_scaling_and_seed_stability_shapes() {
        let rows = core_scaling(&[4, 12], &["mcf"], Budget::quick());
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.speedup > 0.0 && r.coax_geomean_ipc > 0.0), "{rows:#?}");
        let seeds = seed_stability(&[1, 0xC0A51A1], &["mcf"], Budget::quick());
        assert_eq!(seeds.len(), 2);
        assert!(seeds.iter().all(|r| r.geomean_ipc > 0.0), "{seeds:#?}");
        // Different draws, same model: the headline number should not
        // swing wildly with the seed.
        let spread = seeds[0].geomean_ipc / seeds[1].geomean_ipc;
        assert!((0.5..2.0).contains(&spread), "seed-driven IPC spread {spread:.2}x");
    }

    #[test]
    fn prefetch_sweep_normalizes_to_no_prefetch() {
        let rows = prefetch_sweep(
            &[PrefetchPolicy::NextLine { degree: 2 }],
            &["stream-add"],
            Budget::quick(),
        );
        assert_eq!(rows.len(), 1);
        assert!(rows[0].base_rel_ipc > 0.0 && rows[0].coax_rel_ipc > 0.0, "{rows:#?}");
    }

    #[test]
    fn table5_inputs_average_cpis() {
        let budget = Budget::quick();
        let w = Workload::by_name("stream-copy").unwrap();
        let base = budget.run(SystemConfig::ddr_baseline(), w);
        let coax = budget.run(SystemConfig::coaxial_4x(), w);
        let rows = vec![CompareRow {
            workload: "stream-copy".into(),
            speedup: coax.speedup_over(&base),
            base,
            coax,
        }];
        let t5 = table5_inputs(&rows);
        assert!(t5.baseline_cpi > t5.coaxial_cpi, "COAXIAL must lower CPI here");
    }
}
