//! Run-loop engines: the per-core event-driven scheduler (default) and the
//! original global lockstep loop (kept as the differential-testing oracle).
//!
//! Both engines simulate the identical machine: the cycles at which the
//! hierarchy ticks, the completions it delivers, and every per-core counter
//! are bit-identical between them (the differential test in
//! `tests/engine_differential.rs` holds this over the full workload
//! registry). They differ only in how much host work a simulated cycle
//! costs:
//!
//! * **Lockstep** ticks every core every visited cycle and can only skip a
//!   span when *all* cores are simultaneously blocked — which the ROADMAP
//!   measured at <2 % of cycles on Table IV workloads, because twelve cores
//!   rarely stall in unison.
//! * **Event** parks each blocked core individually in a deterministic
//!   [`EventQueue`] (one slot per component, cycle ties broken by fixed
//!   component index) keyed on the exact wakeup bound from
//!   [`Core::next_event`], and replays the parked span in O(1) via
//!   [`Core::fast_forward`] when the core wakes — either at its own bound
//!   or when the hierarchy delivers it a completion. Globally-quiescent
//!   spans are jumped over exactly as in lockstep, with the hierarchy's
//!   `next_event` bound (which aggregates MSHR/NoC completion times, CXL
//!   credit returns, and DRAM refresh/tFAW windows) entering the same
//!   queue as one more component.
//!
//! The safety of parking a core rests on the [`Core::next_event`] contract:
//! a fully-blocked tick is exactly `cycles += 1; stall_cycles += 1`, it
//! reads nothing from the hierarchy, and the blocked state can end only at
//! the reported bound or at a delivered completion. The event engine
//! debug-asserts the bound half of that contract on every bound-triggered
//! wakeup, so a stale bound fails loudly in tests instead of silently
//! degrading skipping.

use coaxial_cache::Hierarchy;
use coaxial_cpu::Core;
use coaxial_dram::MemoryBackend;
use coaxial_sim::{Cycle, EventQueue};
use coaxial_telemetry::TelemetrySink;

/// Which run-loop engine drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Per-core event-driven scheduler (the default).
    Event,
    /// The original global tick loop, selectable via
    /// `COAXIAL_ENGINE=lockstep`; the differential-testing oracle.
    Lockstep,
}

impl EngineKind {
    /// Resolve from `COAXIAL_ENGINE` (default: `event`).
    pub fn from_env() -> Self {
        Self::parse(coaxial_sim::env::engine_name().as_deref())
    }

    /// Map an engine name (any case; `None` = unset) to an engine. Rejects
    /// unknown values loudly — a typo must not silently select an engine.
    pub fn parse(name: Option<&str>) -> Self {
        match name.map(str::to_ascii_lowercase).as_deref() {
            None | Some("event") => Self::Event,
            Some("lockstep") => Self::Lockstep,
            Some(other) => panic!("COAXIAL_ENGINE={other:?}: expected `event` or `lockstep`"),
        }
    }

    /// Stable lowercase name (diagnostics, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            Self::Event => "event",
            Self::Lockstep => "lockstep",
        }
    }
}

/// Engine counters, exported by the driver as `engine.*` registry metrics.
///
/// Both engines report identical values for identical runs: globally
/// quiescent spans are a property of the simulated machine, not of the
/// engine walking it — the differential test relies on this.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineStats {
    /// Cycles jumped over in globally-quiescent spans.
    pub skipped_cycles: u64,
    /// Cycle boundaries at which every core was simultaneously blocked.
    pub blocked_iters: u64,
}

/// Inputs the run loop needs beyond the components themselves.
pub struct RunParams {
    pub warmup: u64,
    pub instructions: u64,
    pub max_cycles: Cycle,
    /// Hot-loop cycle skipping (`COAXIAL_SKIP` / `Simulation::cycle_skip`).
    /// With skipping off, both engines visit every cycle; the event engine
    /// still parks blocked cores individually.
    pub skip: bool,
}

/// What a run loop hands back to report assembly.
pub struct RunOutcome {
    /// Exit cycle (identical between engines for identical runs).
    pub now: Cycle,
    /// Per-core IPC frozen at each core's instruction-budget finish line;
    /// `None` when the run hit `max_cycles` before that core finished.
    pub finish_ipc: Vec<Option<f64>>,
    pub stats: EngineStats,
}

/// Warmup flip and per-core finish checks, evaluated at cycle boundary
/// `now`. Shared verbatim by both engines so the measurement-window
/// semantics cannot drift between them. Only retired-instruction counts are
/// observed, and those cannot change over a skipped (fully-blocked) span —
/// so evaluating at visited cycles only is exact. Returns `true` once every
/// core has hit its instruction budget.
fn window_checks<B: MemoryBackend, T: TelemetrySink>(
    warm: &mut bool,
    finish_ipc: &mut [Option<f64>],
    cores: &mut [Core],
    hierarchy: &mut Hierarchy<B, T>,
    p: &RunParams,
    now: Cycle,
) -> bool {
    if !*warm && cores.iter().all(|c| c.retired >= p.warmup) {
        *warm = true;
        hierarchy.reset_stats(now);
        for c in cores.iter_mut() {
            c.reset_stats();
        }
    }
    if !*warm {
        return false;
    }
    let mut all_done = true;
    for (i, c) in cores.iter().enumerate() {
        if finish_ipc[i].is_none() {
            if c.retired >= p.instructions {
                finish_ipc[i] = Some(c.ipc());
            } else {
                all_done = false;
            }
        }
    }
    all_done
}

/// The original global tick loop: every component ticks every visited
/// cycle; a span is skipped only when every core is blocked at once.
pub fn run_lockstep<B: MemoryBackend, T: TelemetrySink>(
    p: &RunParams,
    cores: &mut [Core],
    hierarchy: &mut Hierarchy<B, T>,
) -> RunOutcome {
    let mut now: Cycle = 0;
    let mut warm = p.warmup == 0;
    let mut finish_ipc: Vec<Option<f64>> = vec![None; cores.len()];
    let mut stats = EngineStats::default();

    while now < p.max_cycles {
        hierarchy.tick(now);
        while let Some((core, id)) = hierarchy.pop_completion() {
            if (core as usize) < cores.len() {
                cores[core as usize].on_memory_complete(id);
            }
        }
        for core in cores.iter_mut() {
            core.tick(now, hierarchy);
        }
        now += 1;

        if window_checks(&mut warm, &mut finish_ipc, cores, hierarchy, p, now) {
            break;
        }

        // Cycle skipping: when every core is fully blocked (ROB-head load
        // outstanding, ROB full, nothing issuable) and the hierarchy proves
        // it has no work before cycle T, every cycle in [now, T) would be a
        // pure stall tick — replay them in O(1) and jump. Clamped to
        // max_cycles-1 so the final simulated cycle (which pins backend
        // measurement windows) matches the unskipped loop exactly.
        if p.skip {
            // Probe the cores first: they veto most skip attempts and their
            // bound is O(issue window), while the hierarchy bound walks
            // every channel. Only consult the hierarchy once every core is
            // provably stalled.
            let mut all_blocked = true;
            let mut target = Cycle::MAX;
            for c in cores.iter() {
                match c.next_event() {
                    Some(e) => target = target.min(e),
                    None => {
                        all_blocked = false;
                        break;
                    }
                }
            }
            if all_blocked {
                // The hierarchy last ticked at now-1, so its next event may
                // be at `now` itself; probe from the last ticked cycle.
                // saturating_sub guards the now == 0 edge (skipping engaged
                // before the first tick must probe cycle 0, not wrap).
                target = target.min(hierarchy.next_event(now.saturating_sub(1)));
                stats.blocked_iters += 1;
                let target = target.min(p.max_cycles - 1);
                if target > now {
                    let skipped = target - now;
                    stats.skipped_cycles += skipped;
                    for c in cores.iter_mut() {
                        c.fast_forward(skipped);
                    }
                    now = target;
                }
            }
        }
    }
    RunOutcome { now, finish_ipc, stats }
}

/// Per-core scheduling state for the event engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    /// Ticks every visited cycle.
    Runnable,
    /// Fully blocked; `idle_from` is its first un-ticked cycle. The parked
    /// span is replayed via `fast_forward` when the core wakes.
    Blocked { idle_from: Cycle },
}

/// Bring a parked core's counters up to cycle boundary `upto` (exclusive):
/// replay the pure-stall span `[idle_from, upto)` and restart the span at
/// `upto`. Required before anything reads or resets the core's counters
/// (warmup flip, IPC freeze, loop exit).
fn materialize(cores: &mut [Core], state: &mut [CoreState], upto: Cycle) {
    for (c, s) in cores.iter_mut().zip(state.iter_mut()) {
        if let CoreState::Blocked { idle_from } = s {
            if upto > *idle_from {
                c.fast_forward(upto - *idle_from);
                *idle_from = upto;
            }
        }
    }
}

/// The per-core event-driven scheduler.
///
/// Component indices in the [`EventQueue`]: cores `0..n` by core index, the
/// memory hierarchy at `n`. Cores are parked on their exact
/// [`Core::next_event`] bound; the hierarchy's slot is (re)scheduled from
/// `Hierarchy::next_event` whenever a globally-quiescent jump is
/// considered. Visited cycles — and therefore every hierarchy tick and
/// completion delivery — are identical to the lockstep engine's.
pub fn run_event<B: MemoryBackend, T: TelemetrySink>(
    p: &RunParams,
    cores: &mut [Core],
    hierarchy: &mut Hierarchy<B, T>,
) -> RunOutcome {
    let n = cores.len();
    let hier_slot = n;
    let mut queue = EventQueue::new(n + 1);
    let mut state = vec![CoreState::Runnable; n];
    let mut runnable = n;
    let mut now: Cycle = 0;
    let mut warm = p.warmup == 0;
    let mut finish_ipc: Vec<Option<f64>> = vec![None; cores.len()];
    let mut stats = EngineStats::default();
    // Cores woken this cycle by their own queue bound (not by a delivered
    // completion); their wake-up tick must make progress (see below).
    let mut woke_at_bound: Vec<usize> = Vec::new();

    while now < p.max_cycles {
        // --- simulate visited cycle `now` ---
        hierarchy.tick(now);
        while let Some((core, id)) = hierarchy.pop_completion() {
            let i = core as usize;
            if i >= n {
                continue;
            }
            cores[i].on_memory_complete(id);
            if let CoreState::Blocked { idle_from } = state[i] {
                // The completion may have unblocked the core. Re-probe: its
                // scheduled heap is frozen while blocked, so the bound can
                // only stay put or collapse to "runnable".
                match cores[i].next_event() {
                    None => {
                        if now > idle_from {
                            cores[i].fast_forward(now - idle_from);
                        }
                        state[i] = CoreState::Runnable;
                        runnable += 1;
                        queue.cancel(i);
                    }
                    Some(at) if at != Cycle::MAX => queue.schedule(i, at),
                    Some(_) => queue.cancel(i),
                }
            }
        }
        // Wake cores whose own bound is due this cycle.
        woke_at_bound.clear();
        while let Some((at, slot)) = queue.pop_due(now) {
            if slot == hier_slot {
                continue; // the hierarchy ticked above; its slot just expires
            }
            debug_assert_eq!(at, now, "core {slot}: bound in the past means a missed wake-up");
            if let CoreState::Blocked { idle_from } = state[slot] {
                if now > idle_from {
                    cores[slot].fast_forward(now - idle_from);
                }
                state[slot] = CoreState::Runnable;
                runnable += 1;
                woke_at_bound.push(slot);
            }
        }
        // Tick runnable cores in fixed core order (identical to lockstep's
        // iteration order); park the ones that come out fully blocked.
        for i in 0..n {
            if state[i] != CoreState::Runnable {
                continue;
            }
            let fp_before = if cfg!(debug_assertions) && woke_at_bound.contains(&i) {
                Some(cores[i].progress_fingerprint())
            } else {
                None
            };
            cores[i].tick(now, hierarchy);
            if let Some(before) = fp_before {
                // Stale-bound tripwire: `next_event` promised the core's
                // own state changes at this cycle (a due `scheduled` entry
                // pops), so a pure-stall wake-up tick means the bound was
                // conservative and skipping is silently degraded.
                assert_ne!(
                    before,
                    cores[i].progress_fingerprint(),
                    "core {i}: woken at its own next_event bound (cycle {now}) \
                     but the tick made no progress — stale bound"
                );
            }
            if let Some(at) = cores[i].next_event() {
                state[i] = CoreState::Blocked { idle_from: now + 1 };
                runnable -= 1;
                if at != Cycle::MAX {
                    queue.schedule(i, at);
                } else {
                    queue.cancel(i);
                }
            }
        }
        now += 1;

        // The warmup flip zeroes every core's counters; parked spans must
        // be replayed into the pre-reset window first, exactly as lockstep
        // ticked them, or post-reset counters would inherit pre-reset
        // stalls. (The finish-IPC freeze needs no such care: a core is
        // frozen at the boundary right after the tick in which it crossed
        // its budget, so its counters are always current there.)
        if !warm && cores.iter().all(|c| c.retired >= p.warmup) {
            materialize(cores, &mut state, now);
        }
        if window_checks(&mut warm, &mut finish_ipc, cores, hierarchy, p, now) {
            break;
        }

        // --- choose the next visited cycle ---
        // While any core is runnable the next cycle is visited (lockstep
        // semantics); when all cores are parked, jump to the earliest event
        // in the queue — core wakeups and the hierarchy bound alike.
        if runnable == 0 && p.skip {
            stats.blocked_iters += 1;
            let hier_at = hierarchy.next_event(now.saturating_sub(1));
            if hier_at != Cycle::MAX {
                queue.schedule(hier_slot, hier_at);
            } else {
                queue.cancel(hier_slot);
            }
            let at = queue.peek().map_or(Cycle::MAX, |(at, _)| at);
            let target = at.min(p.max_cycles - 1);
            if target > now {
                stats.skipped_cycles += target - now;
                now = target;
            }
        }
    }
    materialize(cores, &mut state, now);
    RunOutcome { now, finish_ipc, stats }
}
