//! Memory capacity and cost model (paper §IV-E).
//!
//! COAXIAL's many cheap channels change the DIMM economics: capacity can
//! be built from low-density DIMMs at one DIMM per channel (1DPC), instead
//! of high-density DIMMs (whose price grows superlinearly — the paper
//! quotes 128 GB / 256 GB DIMMs at 5× / 20× the price of 64 GB) or
//! two-DIMMs-per-channel configurations (which cost ~15 % of the channel's
//! bandwidth).

use serde::Serialize;

/// Relative price of a DIMM by capacity, normalized to a 64 GB RDIMM
/// (paper §IV-E's quoted superlinear curve, extended linearly below 64 GB
/// where density is commodity).
pub fn dimm_relative_price(capacity_gb: u32) -> f64 {
    match capacity_gb {
        0..=16 => capacity_gb as f64 / 64.0,
        17..=32 => 0.5,
        33..=64 => 1.0,
        65..=128 => 5.0,
        129..=256 => 20.0,
        _ => 80.0, // extrapolated: the curve keeps steepening
    }
}

/// Bandwidth retained when populating two DIMMs per channel
/// (paper: 2DPC costs ~15 % of bandwidth).
pub const DPC2_BANDWIDTH_FACTOR: f64 = 0.85;

/// One memory build-out option.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryBuildout {
    pub name: String,
    /// DDR channels available (12 for the baseline, 48 for COAXIAL-4x).
    pub channels: u32,
    /// DIMM capacity in GB.
    pub dimm_gb: u32,
    /// DIMMs per channel (1 or 2).
    pub dpc: u32,
}

impl MemoryBuildout {
    pub fn new(name: &str, channels: u32, dimm_gb: u32, dpc: u32) -> Self {
        assert!(dpc == 1 || dpc == 2, "DDR5 supports 1 or 2 DIMMs per channel");
        Self { name: name.to_string(), channels, dimm_gb, dpc }
    }

    /// Total capacity in GB.
    pub fn capacity_gb(&self) -> u64 {
        self.channels as u64 * self.dpc as u64 * self.dimm_gb as u64
    }

    /// Total DIMM cost in 64 GB-DIMM units.
    pub fn relative_cost(&self) -> f64 {
        self.channels as f64 * self.dpc as f64 * dimm_relative_price(self.dimm_gb)
    }

    /// Bandwidth factor relative to the same channels at 1DPC.
    pub fn bandwidth_factor(&self) -> f64 {
        if self.dpc == 2 {
            DPC2_BANDWIDTH_FACTOR
        } else {
            1.0
        }
    }

    /// Cost per TB, in 64 GB-DIMM units.
    pub fn cost_per_tb(&self) -> f64 {
        self.relative_cost() / (self.capacity_gb() as f64 / 1024.0)
    }
}

/// The §IV-E comparison: ways of reaching a target capacity on the
/// baseline's 12 channels versus COAXIAL-4x's 48 channels.
pub fn iso_capacity_options(target_tb: f64) -> Vec<MemoryBuildout> {
    let per_channel = |channels: u32, dpc: u32| -> u32 {
        let gb = target_tb * 1024.0 / (channels as f64 * dpc as f64);
        // Round up to the next power-of-two DIMM size.
        let mut size = 16u32;
        while (size as f64) < gb {
            size *= 2;
        }
        size
    };
    vec![
        MemoryBuildout::new("baseline 12ch 1DPC", 12, per_channel(12, 1), 1),
        MemoryBuildout::new("baseline 12ch 2DPC", 12, per_channel(12, 2), 2),
        MemoryBuildout::new("COAXIAL 48ch 1DPC", 48, per_channel(48, 1), 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_curve_matches_paper_quotes() {
        let p64 = dimm_relative_price(64);
        assert_eq!(dimm_relative_price(128) / p64, 5.0, "128 GB costs 5x");
        assert_eq!(dimm_relative_price(256) / p64, 20.0, "256 GB costs 20x");
    }

    #[test]
    fn capacity_and_cost_arithmetic() {
        let b = MemoryBuildout::new("x", 12, 64, 2);
        assert_eq!(b.capacity_gb(), 12 * 2 * 64);
        assert!((b.relative_cost() - 24.0).abs() < 1e-12);
        assert_eq!(b.bandwidth_factor(), DPC2_BANDWIDTH_FACTOR);
    }

    #[test]
    fn coaxial_reaches_iso_capacity_cheaper_with_full_bandwidth() {
        // 1.5 TB: baseline needs 128 GB DIMMs (or 2DPC), COAXIAL uses 32 GB.
        let opts = iso_capacity_options(1.5);
        let base_1dpc = &opts[0];
        let base_2dpc = &opts[1];
        let coax = &opts[2];
        assert!(base_1dpc.dimm_gb >= 128);
        assert!(coax.dimm_gb <= 32);
        assert!(
            coax.relative_cost() < base_1dpc.relative_cost(),
            "COAXIAL {} vs baseline-1DPC {}",
            coax.relative_cost(),
            base_1dpc.relative_cost()
        );
        assert_eq!(coax.bandwidth_factor(), 1.0, "no 2DPC bandwidth penalty");
        assert!(base_2dpc.bandwidth_factor() < 1.0);
        // All options actually reach the target.
        for o in &opts {
            assert!(o.capacity_gb() as f64 >= 1.5 * 1024.0, "{} too small", o.name);
        }
    }

    #[test]
    fn cost_per_tb_favors_low_density() {
        let low = MemoryBuildout::new("low", 48, 32, 1);
        let high = MemoryBuildout::new("high", 12, 128, 1);
        assert!(low.cost_per_tb() < high.cost_per_tb());
    }

    #[test]
    #[should_panic(expected = "1 or 2 DIMMs")]
    fn invalid_dpc_rejected() {
        let _ = MemoryBuildout::new("bad", 12, 64, 3);
    }
}
