//! Silicon-area model (paper Tables I and II).
//!
//! Component areas are normalized to 1 MB of LLC, derived by the authors
//! from Golden Cove (Intel 10 nm) and Zen 3 (TSMC 7 nm) die shots (paper
//! references \[34\], \[58\]). The model reproduces Table II's
//! relative-area column for the candidate 144-core server designs.

use serde::Serialize;

/// Relative area of processor components, in units of 1 MB LLC (Table I).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AreaModel {
    pub llc_1mb: f64,
    pub zen3_core: f64,
    pub pcie_x8: f64,
    pub ddr_channel: f64,
}

impl AreaModel {
    /// The paper's Table I values.
    pub fn table_i() -> Self {
        Self { llc_1mb: 1.0, zen3_core: 6.5, pcie_x8: 5.9, ddr_channel: 10.8 }
    }
}

/// One Table II server design row.
#[derive(Debug, Clone, Serialize)]
pub struct ServerDesign {
    pub name: &'static str,
    pub cores: u32,
    pub llc_mb_per_core: f64,
    pub ddr_channels: u32,
    pub cxl_x8_channels: u32,
    pub relative_bandwidth: f64,
    pub comment: &'static str,
}

impl ServerDesign {
    /// Total die area in LLC-MB units under the given area model.
    pub fn area(&self, m: &AreaModel) -> f64 {
        self.cores as f64 * m.zen3_core
            + self.cores as f64 * self.llc_mb_per_core * m.llc_1mb
            + self.ddr_channels as f64 * m.ddr_channel
            + self.cxl_x8_channels as f64 * m.pcie_x8
    }

    /// Area relative to the DDR baseline design.
    pub fn relative_area(&self, m: &AreaModel) -> f64 {
        self.area(m) / Self::baseline().area(m)
    }

    /// Table II row 1: the 144-core DDR-based baseline.
    pub fn baseline() -> Self {
        Self {
            name: "DDR-based",
            cores: 144,
            llc_mb_per_core: 2.0,
            ddr_channels: 12,
            cxl_x8_channels: 0,
            relative_bandwidth: 1.0,
            comment: "baseline",
        }
    }

    /// Table II row 2: iso-pin COAXIAL-5x (60 x8 CXL).
    pub fn coaxial_5x() -> Self {
        Self {
            name: "COAXIAL-5x",
            cores: 144,
            llc_mb_per_core: 2.0,
            ddr_channels: 0,
            cxl_x8_channels: 60,
            relative_bandwidth: 5.0,
            comment: "iso-pin",
        }
    }

    /// Table II row 3: iso-LLC COAXIAL-2x (24 x8 CXL).
    pub fn coaxial_2x() -> Self {
        Self {
            name: "COAXIAL-2x",
            cores: 144,
            llc_mb_per_core: 2.0,
            ddr_channels: 0,
            cxl_x8_channels: 24,
            relative_bandwidth: 2.0,
            comment: "iso-LLC",
        }
    }

    /// Table II row 4: balanced COAXIAL-4x (48 x8 CXL, 1 MB LLC/core).
    pub fn coaxial_4x() -> Self {
        Self {
            name: "COAXIAL-4x",
            cores: 144,
            llc_mb_per_core: 1.0,
            ddr_channels: 0,
            cxl_x8_channels: 48,
            relative_bandwidth: 4.0,
            comment: "balanced",
        }
    }

    /// Table II row 5: COAXIAL-asym (48 x8 CXL-asym, 2 DDR channels each
    /// on the device side — no extra processor area).
    pub fn coaxial_asym() -> Self {
        Self {
            name: "COAXIAL-asym",
            cores: 144,
            llc_mb_per_core: 1.0,
            ddr_channels: 0,
            cxl_x8_channels: 48,
            relative_bandwidth: f64::NAN, // asymmetric R/W provisioning
            comment: "max BW",
        }
    }

    /// All Table II rows in paper order.
    pub fn table_ii() -> Vec<ServerDesign> {
        vec![
            Self::baseline(),
            Self::coaxial_5x(),
            Self::coaxial_2x(),
            Self::coaxial_4x(),
            Self::coaxial_asym(),
        ]
    }
}

/// How many x8 PCIe controllers fit in one DDR controller's *pin* budget
/// (§IV-A: a DDR5 channel needs 160 pins, an x8 CXL channel 32).
pub fn cxl_channels_per_ddr_pins() -> u32 {
    160 / 32
}

/// Relative silicon area of replacing one DDR controller with four x8
/// PCIe controllers (§IV-B: "2.2x more silicon area").
pub fn four_x8_vs_one_ddr_area() -> f64 {
    let m = AreaModel::table_i();
    4.0 * m.pcie_x8 / m.ddr_channel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_pin_gives_five_channels() {
        assert_eq!(cxl_channels_per_ddr_pins(), 5);
    }

    #[test]
    fn four_x8_cost_about_2_2x_ddr() {
        let x = four_x8_vs_one_ddr_area();
        assert!((x - 2.18).abs() < 0.05, "4 x8 / DDR = {x}");
    }

    #[test]
    fn coaxial_5x_costs_about_17_percent_more_die() {
        let m = AreaModel::table_i();
        let rel = ServerDesign::coaxial_5x().relative_area(&m);
        // Paper: 1.17x.
        assert!((rel - 1.17).abs() < 0.03, "COAXIAL-5x rel area = {rel:.3}");
    }

    #[test]
    fn coaxial_4x_is_iso_area() {
        let m = AreaModel::table_i();
        let rel = ServerDesign::coaxial_4x().relative_area(&m);
        // Paper: 1.01x.
        assert!((rel - 1.01).abs() < 0.03, "COAXIAL-4x rel area = {rel:.3}");
    }

    #[test]
    fn coaxial_2x_fits_baseline_area() {
        let m = AreaModel::table_i();
        let rel = ServerDesign::coaxial_2x().relative_area(&m);
        assert!(rel <= 1.01, "COAXIAL-2x rel area = {rel:.3}");
    }

    #[test]
    fn table_ii_has_five_rows() {
        assert_eq!(ServerDesign::table_ii().len(), 5);
    }
}
