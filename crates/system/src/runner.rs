//! Parallel experiment runner: a work-stealing job pool for independent
//! simulations.
//!
//! Every figure/table of the evaluation is a batch of *independent*
//! cycle-level runs (different configs, workloads, or seeds), so the
//! natural unit of parallelism is the whole run. This module provides:
//!
//! * [`parallel_map`] — a generic work-stealing map over a slice, built on
//!   `std::thread::scope` (no external dependencies). Workers pull the
//!   next item from a shared atomic counter, so long runs never gate
//!   short ones behind a static partition.
//! * [`RunSpec`] / [`run_all`] — the simulation-shaped front end: describe
//!   a batch of runs declaratively, get the reports back.
//!
//! **Determinism contract:** results are keyed by input index, never by
//! completion order. `run_all(specs)[i]` is the report for `specs[i]`
//! regardless of `COAXIAL_JOBS`, thread scheduling, or which worker
//! happened to execute it. Each simulation is self-contained (its RNG
//! seeds derive from the spec, not from global state), so
//! `COAXIAL_JOBS=1` and `COAXIAL_JOBS=N` produce bit-identical reports —
//! see `tests/parallel_equivalence.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};

use coaxial_workloads::Workload;

use crate::config::SystemConfig;
use crate::engine::EngineKind;
use crate::server::{RunReport, Simulation};

/// Map `f` over `items` on `jobs` worker threads with work stealing.
///
/// Results are returned in input order. A panic in `f` propagates to the
/// caller after the scope joins (no work is silently dropped).
pub fn parallel_map_jobs<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }

    // Workers race on a shared cursor and collect (index, result) pairs
    // locally; the pairs are re-keyed by index after the scope joins, so
    // completion order never leaks into the output.
    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, f(&items[i])));
                    }
                    done
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("runner worker panicked")).collect()
    });

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("every index ran exactly once")).collect()
}

/// [`parallel_map_jobs`] with the worker count from `COAXIAL_JOBS`
/// (default: all host cores).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_jobs(items, coaxial_sim::env::jobs(), f)
}

/// One independent simulation: a system configuration, the workload on
/// each core, and the instruction budget.
#[derive(Clone)]
pub struct RunSpec {
    pub config: SystemConfig,
    /// One workload per core (replicated for homogeneous runs).
    pub workloads: Vec<&'static Workload>,
    pub instructions: u64,
    pub warmup: u64,
    /// Explicit engine selection; `None` defers to `COAXIAL_ENGINE`.
    pub engine: Option<EngineKind>,
}

impl RunSpec {
    /// Every core runs the same workload (the common single-program case).
    pub fn homogeneous(
        config: SystemConfig,
        workload: &'static Workload,
        instructions: u64,
        warmup: u64,
    ) -> Self {
        let workloads = vec![workload; config.functional.cores];
        Self { config, workloads, instructions, warmup, engine: None }
    }

    /// Heterogeneous run (Fig. 6 mixes): one workload per core.
    pub fn mix(
        config: SystemConfig,
        mix: &[&'static Workload],
        instructions: u64,
        warmup: u64,
    ) -> Self {
        Self { config, workloads: mix.to_vec(), instructions, warmup, engine: None }
    }

    /// Pin the execution engine instead of deferring to `COAXIAL_ENGINE`
    /// (the gateway pins per-request so concurrent clients can mix
    /// engines without racing on the environment).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Materialize the configured [`Simulation`] without running it, for
    /// callers that attach telemetry or tracing before execution.
    pub fn simulation(&self) -> Simulation {
        let sim = Simulation::new_mix(self.config.clone(), &self.workloads)
            .instructions_per_core(self.instructions)
            .warmup(self.warmup);
        match self.engine {
            Some(kind) => sim.engine(kind),
            None => sim,
        }
    }

    /// Build and run this spec to completion.
    pub fn run(&self) -> RunReport {
        self.simulation().run()
    }
}

/// Execute a batch of independent runs across the job pool.
///
/// `run_all(specs)[i]` corresponds to `specs[i]`; see the module docs for
/// the determinism contract.
pub fn run_all(specs: &[RunSpec]) -> Vec<RunReport> {
    parallel_map(specs, RunSpec::run)
}

/// [`run_all`] with an explicit worker count (ignores `COAXIAL_JOBS`);
/// used by the equivalence tests to avoid racing on the environment.
pub fn run_all_jobs(specs: &[RunSpec], jobs: usize) -> Vec<RunReport> {
    parallel_map_jobs(specs, jobs, RunSpec::run)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial = parallel_map_jobs(&items, 1, |&x| x * x);
        let parallel = parallel_map_jobs(&items, 8, |&x| x * x);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[13], 169);
    }

    #[test]
    fn parallel_map_handles_empty_and_oversubscribed() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map_jobs(&none, 4, |&x| x).is_empty());
        let one = [7u32];
        assert_eq!(parallel_map_jobs(&one, 64, |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_lands_on_the_right_index() {
        // Early items take much longer than late ones; with a static
        // partition the slow prefix would finish last, so this catches
        // any completion-order keying.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map_jobs(&items, 4, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 100
        });
        assert_eq!(out, (100..132).collect::<Vec<u64>>());
    }
}
