//! Bandwidth-per-processor-pin model (paper Fig. 1).
//!
//! Fig. 1 plots the bandwidth per pin of DDR and PCIe generations,
//! normalized to PCIe 1.0. DDR interfaces are charged 160 processor pins
//! per channel (data + ECC + command/address); PCIe is 4 pins per lane
//! (differential TX + RX). DDR bandwidths are the combined read+write
//! peak; PCIe bandwidths are per direction (the paper notes this makes
//! the comparison *conservative* for PCIe).

use serde::Serialize;

/// One interface generation's point on Fig. 1.
#[derive(Debug, Clone, Serialize)]
pub struct InterfacePoint {
    pub name: &'static str,
    pub family: &'static str,
    pub year: u32,
    /// Peak bandwidth in GB/s (per channel for DDR, per lane per
    /// direction for PCIe).
    pub bandwidth_gbs: f64,
    /// Processor pins required for that bandwidth.
    pub pins: u32,
}

impl InterfacePoint {
    pub fn bw_per_pin(&self) -> f64 {
        self.bandwidth_gbs / self.pins as f64
    }
}

/// Pins a DDR channel drives to the processor (§II-A).
pub const DDR_PINS: u32 = 160;
/// Pins per PCIe lane (2 TX + 2 RX).
pub const PCIE_PINS_PER_LANE: u32 = 4;

/// The Fig. 1 dataset.
pub fn bandwidth_per_pin_table() -> Vec<InterfacePoint> {
    vec![
        // DDR: per-channel combined bandwidth at the top transfer rate.
        InterfacePoint {
            name: "DDR1-400",
            family: "DDR",
            year: 2000,
            bandwidth_gbs: 3.2,
            pins: DDR_PINS,
        },
        InterfacePoint {
            name: "DDR2-800",
            family: "DDR",
            year: 2003,
            bandwidth_gbs: 6.4,
            pins: DDR_PINS,
        },
        InterfacePoint {
            name: "DDR3-1600",
            family: "DDR",
            year: 2007,
            bandwidth_gbs: 12.8,
            pins: DDR_PINS,
        },
        InterfacePoint {
            name: "DDR4-3200",
            family: "DDR",
            year: 2014,
            bandwidth_gbs: 25.6,
            pins: DDR_PINS,
        },
        InterfacePoint {
            name: "DDR5-4800",
            family: "DDR",
            year: 2020,
            bandwidth_gbs: 38.4,
            pins: DDR_PINS,
        },
        // PCIe: per-lane, per-direction.
        InterfacePoint {
            name: "PCIe-1.0",
            family: "PCIe",
            year: 2003,
            bandwidth_gbs: 0.25,
            pins: PCIE_PINS_PER_LANE,
        },
        InterfacePoint {
            name: "PCIe-2.0",
            family: "PCIe",
            year: 2007,
            bandwidth_gbs: 0.5,
            pins: PCIE_PINS_PER_LANE,
        },
        InterfacePoint {
            name: "PCIe-3.0",
            family: "PCIe",
            year: 2010,
            bandwidth_gbs: 1.0,
            pins: PCIE_PINS_PER_LANE,
        },
        InterfacePoint {
            name: "PCIe-4.0",
            family: "PCIe",
            year: 2017,
            bandwidth_gbs: 2.0,
            pins: PCIE_PINS_PER_LANE,
        },
        InterfacePoint {
            name: "PCIe-5.0",
            family: "PCIe",
            year: 2019,
            bandwidth_gbs: 4.0,
            pins: PCIE_PINS_PER_LANE,
        },
        InterfacePoint {
            name: "PCIe-6.0",
            family: "PCIe",
            year: 2022,
            bandwidth_gbs: 8.0,
            pins: PCIE_PINS_PER_LANE,
        },
    ]
}

/// The Fig. 1 series normalized to PCIe 1.0's bandwidth per pin.
pub fn normalized_to_pcie1() -> Vec<(String, f64)> {
    let table = bandwidth_per_pin_table();
    let pcie1 = table.iter().find(|p| p.name == "PCIe-1.0").expect("PCIe 1.0 present").bw_per_pin();
    table.iter().map(|p| (p.name.to_string(), p.bw_per_pin() / pcie1)).collect()
}

/// The headline §II-C ratio: PCIe 5.0 x8 vs. DDR5-4800 bandwidth per pin.
pub fn pcie5_vs_ddr5_ratio() -> f64 {
    let table = bandwidth_per_pin_table();
    let pcie5 = table.iter().find(|p| p.name == "PCIe-5.0").unwrap().bw_per_pin();
    let ddr5 = table.iter().find(|p| p.name == "DDR5-4800").unwrap().bw_per_pin();
    pcie5 / ddr5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie5_offers_about_4x_bw_per_pin_over_ddr5() {
        let r = pcie5_vs_ddr5_ratio();
        // Paper §II-C: "the present bandwidth gap is 4x".
        assert!((3.9..4.4).contains(&r), "ratio = {r:.2}");
    }

    #[test]
    fn normalization_anchors_pcie1_at_one() {
        let n = normalized_to_pcie1();
        let pcie1 = n.iter().find(|(name, _)| name == "PCIe-1.0").unwrap();
        assert!((pcie1.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn each_family_is_monotonically_improving() {
        let t = bandwidth_per_pin_table();
        for family in ["DDR", "PCIe"] {
            let series: Vec<f64> =
                t.iter().filter(|p| p.family == family).map(|p| p.bw_per_pin()).collect();
            assert!(series.windows(2).all(|w| w[1] > w[0]), "{family} must improve");
        }
    }

    #[test]
    fn ddr_never_catches_pcie_from_gen3_on() {
        let t = bandwidth_per_pin_table();
        let ddr_best =
            t.iter().filter(|p| p.family == "DDR").map(|p| p.bw_per_pin()).fold(0.0, f64::max);
        let pcie3 = t.iter().find(|p| p.name == "PCIe-3.0").unwrap().bw_per_pin();
        assert!(pcie3 > ddr_best, "PCIe 3.0 already beats every DDR generation per pin");
    }
}
