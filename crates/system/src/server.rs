//! The simulation driver: builds a configured server, runs a workload (or
//! mix) with warmup, and harvests a [`RunReport`].
//!
//! Methodology follows the paper §V: the same workload is deployed on all
//! active cores (or one workload per core for mixes), simulation warms up
//! for a fixed instruction count per core, statistics reset, and the
//! measured window ends when every active core has retired its
//! instruction budget (a core that finishes early keeps executing to
//! maintain memory pressure, but its IPC is frozen at its finish line —
//! ChampSim semantics).

use std::path::PathBuf;
use std::sync::{Arc, LazyLock, Mutex};

use coaxial_cache::{CalmStats, HierStats, Hierarchy, HierarchyConfig, PrefillState};
use coaxial_cpu::{Core, CoreParams, FileTrace, TraceSource};
use coaxial_cxl::CxlMemory;
use coaxial_dram::{ChannelStats, MemoryBackend, MultiChannel};
use coaxial_sim::{ByteBoundedLru, Cycle};
use coaxial_telemetry::{MetricsRegistry, NullTelemetry, TelemetrySink};
use coaxial_workloads::Workload;
use serde::Serialize;

use crate::config::{MemorySystemKind, SystemConfig};
use crate::engine::{self, EngineKind, RunParams};

/// Default measured instructions per core. The paper runs 200 M after
/// 50 M of warmup on a cluster; this reproduction defaults to a laptop-
/// scale budget and honours `COAXIAL_INSTR` / `COAXIAL_WARMUP` overrides.
pub const DEFAULT_INSTRUCTIONS: u64 = 120_000;
pub const DEFAULT_WARMUP: u64 = 20_000;

/// Results of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    pub config_name: String,
    pub workload_names: Vec<String>,
    /// Mean per-core IPC over active cores.
    pub ipc: f64,
    pub per_core_ipc: Vec<f64>,
    /// Demand LLC misses per kilo-instruction (aggregate).
    pub mpki: f64,
    /// Mean L2-miss latency components, ns: (on-chip, queue, DRAM, CXL).
    pub breakdown_ns: (f64, f64, f64, f64),
    /// Mean total L2-miss latency, ns.
    pub l2_miss_latency_ns: f64,
    /// Achieved memory bandwidth, GB/s (reads, writes).
    pub read_gbs: f64,
    pub write_gbs: f64,
    /// Bandwidth utilization relative to this system's own DDR peak.
    pub utilization: f64,
    /// Utilization expressed against the *baseline* single channel
    /// (shows absolute traffic growth, Fig. 5 bottom).
    pub bandwidth_gbs: f64,
    pub llc_miss_ratio: f64,
    /// Mean (TX, RX) CXL link utilization (None on the DDR baseline).
    pub cxl_link_utilization: Option<(f64, f64)>,
    pub calm: CalmStats,
    /// Raw hierarchy statistics.
    pub hier: HierStats,
    /// Raw aggregated DDR statistics.
    pub ddr: ChannelStats,
    /// Measured-window length in cycles.
    pub cycles: Cycle,
    /// Per-core retired instructions in the measured window.
    pub instructions: u64,
}

impl RunReport {
    /// Speedup of this run over a baseline run (IPC ratio).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if baseline.ipc == 0.0 {
            0.0
        } else {
            self.ipc / baseline.ipc
        }
    }
}

/// Everything the functional prefill's outcome depends on: the per-core
/// workloads, the trace seed, and the cache geometry (core count and LLC
/// slice size; L1/L2 shapes are fixed by Table III). Deliberately *not* the
/// memory system — prefill is functional, so a baseline-DDR run and a
/// CXL run of the same workload warm up to the identical state.
type PrefillKey = (Vec<String>, u64, usize, usize, u64);

/// Byte-bounded keyed LRU of warmed prefill states. Compare-style sweeps
/// (Figs. 5, 7, 8, 10) revisit the base and COAXIAL twins of each workload,
/// and the parallel runner interleaves runs arbitrarily — a keyed cache
/// keeps every live twin warm where a one-entry memo thrashes. The budget
/// is `COAXIAL_PREFILL_CACHE_MB` (per cache); hit/miss/eviction counters
/// surface in the metrics registry as `server.prefill.state_cache.*` via
/// [`prefill_cache_metrics`].
static PREFILL_MEMO: LazyLock<Mutex<ByteBoundedLru<PrefillKey, Arc<PrefillState>>>> =
    LazyLock::new(|| Mutex::new(ByteBoundedLru::new(prefill_cache_budget())));

/// Shared byte budget for each cross-run prefill cache.
fn prefill_cache_budget() -> u64 {
    coaxial_sim::env::prefill_cache_mb() * 1024 * 1024
}

/// What a prefill *access stream* depends on — strictly less than
/// [`PrefillKey`]: the stream is a property of the workloads and seed alone,
/// so two geometries that cannot share warmed state (baseline vs. COAXIAL,
/// which trades LLC slices for CXL controllers) still replay the same
/// generated accesses, merely chunked into different round sizes.
type PrefillGenKey = (Vec<String>, u64, usize);

/// Lazily-extended per-core access streams plus the paused generators that
/// produce them. Parked in [`PREFILL_GEN`] between runs so a sweep visiting
/// one workload under several memory systems generates each stream once.
struct PrefillGen {
    traces: Vec<Box<dyn TraceSource + Send>>,
    streams: Vec<Vec<(u64, bool)>>,
}

impl PrefillGen {
    fn new(traces: Vec<Box<dyn TraceSource + Send>>) -> Self {
        let streams = traces.iter().map(|_| Vec::new()).collect();
        Self { traces, streams }
    }

    /// Approximate heap footprint: the generated streams dominate; the
    /// paused generators get a nominal per-trace charge.
    fn approx_bytes(&self) -> u64 {
        let streams: usize =
            self.streams.iter().map(|s| s.capacity() * std::mem::size_of::<(u64, bool)>()).sum();
        (streams + self.traces.len() * 1024) as u64
    }

    /// The first `len` accesses of core `i`'s stream, generating the tail on
    /// demand. Chunk boundaries never reach the generator, so any round size
    /// sees the same sequence.
    fn stream(&mut self, i: usize, len: usize) -> &[(u64, bool)] {
        let s = &mut self.streams[i];
        if s.len() < len {
            let t = &mut self.traces[i];
            s.extend((s.len()..len).map(|_| t.next_access()));
        }
        &self.streams[i][..len]
    }
}

/// Byte-bounded keyed park for paused [`PrefillGen`]s (same budget knob and
/// metrics story as [`PREFILL_MEMO`]; counters export as
/// `server.prefill.stream_cache.*`). Entries are *taken* out for exclusive
/// mutation during a prefill and re-inserted afterwards, so a generator is
/// never shared between concurrent runs.
static PREFILL_GEN: LazyLock<Mutex<ByteBoundedLru<PrefillGenKey, PrefillGen>>> =
    LazyLock::new(|| Mutex::new(ByteBoundedLru::new(prefill_cache_budget())));

/// Export the cross-run prefill caches' occupancy and hit/miss/eviction
/// counters into `reg` under `server.prefill.*`. The counters are
/// process-wide (the caches are shared across runs and threads), so sweep
/// reports see the cumulative numbers.
pub fn prefill_cache_metrics(reg: &mut MetricsRegistry) {
    let mut export =
        |name: &str, hits: u64, misses: u64, evictions: u64, entries: u64, bytes: u64| {
            reg.set_counter(&format!("server.prefill.{name}.hits"), hits);
            reg.set_counter(&format!("server.prefill.{name}.misses"), misses);
            reg.set_counter(&format!("server.prefill.{name}.evictions"), evictions);
            reg.set_gauge(&format!("server.prefill.{name}.entries"), entries as f64);
            reg.set_gauge(&format!("server.prefill.{name}.bytes"), bytes as f64);
        };
    {
        let memo = PREFILL_MEMO.lock().unwrap();
        export(
            "state_cache",
            memo.hits(),
            memo.misses(),
            memo.evictions(),
            memo.len() as u64,
            memo.bytes(),
        );
    }
    {
        let gen = PREFILL_GEN.lock().unwrap();
        export(
            "stream_cache",
            gen.hits(),
            gen.misses(),
            gen.evictions(),
            gen.len() as u64,
            gen.bytes(),
        );
    }
}

/// Builder for one simulation run.
pub struct Simulation {
    config: SystemConfig,
    /// One workload per core (replicated for homogeneous runs).
    workloads: Vec<&'static Workload>,
    /// Replay a captured `.cxtr` trace on every core instead of a
    /// registry workload (see `coaxial_cpu::tracefile`).
    trace_file: Option<PathBuf>,
    instructions: u64,
    warmup: u64,
    max_cycles: Cycle,
    /// Hot-loop cycle skipping; `None` follows `COAXIAL_SKIP` (default on).
    cycle_skip: Option<bool>,
    /// Run-loop engine; `None` follows `COAXIAL_ENGINE` (default: event).
    engine: Option<EngineKind>,
}

impl Simulation {
    /// Homogeneous run: the same workload on every active core (§V).
    pub fn new(config: SystemConfig, workload: &'static Workload) -> Self {
        let workloads = vec![workload; config.cores];
        Self::with_workloads(config, workloads)
    }

    /// Heterogeneous run (Fig. 6 mixes): one workload per core.
    pub fn new_mix(config: SystemConfig, mix: &[&'static Workload]) -> Self {
        assert_eq!(mix.len(), config.cores, "mix must name one workload per core");
        Self::with_workloads(config, mix.to_vec())
    }

    fn with_workloads(config: SystemConfig, workloads: Vec<&'static Workload>) -> Self {
        let instructions = coaxial_sim::env::instructions(DEFAULT_INSTRUCTIONS);
        let warmup = coaxial_sim::env::warmup(DEFAULT_WARMUP);
        Self {
            config,
            workloads,
            trace_file: None,
            instructions,
            warmup,
            max_cycles: 0,
            cycle_skip: None,
            engine: None,
        }
    }

    /// Replay a captured trace file on every active core.
    pub fn from_trace_file(config: SystemConfig, path: impl Into<PathBuf>) -> Self {
        let mut s = Self::with_workloads(config, Vec::new());
        s.trace_file = Some(path.into());
        s
    }

    /// Build the trace stream for core `i` (registry workload or file).
    fn trace_for(&self, i: usize, seed: u64) -> Box<dyn TraceSource + Send> {
        match &self.trace_file {
            Some(path) => Box::new(
                FileTrace::open(path).unwrap_or_else(|e| panic!("cannot open trace {path:?}: {e}")),
            ),
            None => self.workloads[i].trace(coaxial_sim::small_u32(i), seed),
        }
    }

    fn workload_names(&self) -> Vec<String> {
        match &self.trace_file {
            Some(path) => vec![path.display().to_string()],
            None => self.workloads.iter().map(|w| w.name.to_string()).collect(),
        }
    }

    /// Measured instructions per core (overrides `COAXIAL_INSTR`).
    pub fn instructions_per_core(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Warmup instructions per core (overrides `COAXIAL_WARMUP`).
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Hard cycle cap (default: scaled to the instruction budget).
    pub fn max_cycles(mut self, n: Cycle) -> Self {
        self.max_cycles = n;
        self
    }

    /// Force hot-loop cycle skipping on or off (overrides `COAXIAL_SKIP`).
    /// Skipping is statistically invisible: reports are bit-identical either
    /// way (see DESIGN.md "Performance & parallelism").
    pub fn cycle_skip(mut self, on: bool) -> Self {
        self.cycle_skip = Some(on);
        self
    }

    /// Force a run-loop engine (overrides `COAXIAL_ENGINE`). Both engines
    /// produce bit-identical reports, telemetry, and metrics; `Lockstep` is
    /// the slow differential-testing oracle (see `engine` module docs).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = Some(kind);
        self
    }

    /// Run to completion and report.
    pub fn run(self) -> RunReport {
        match &self.config.memory {
            MemorySystemKind::DirectDdr { channels } => {
                let backend = MultiChannel::new(&self.config.dram, *channels);
                self.run_with(backend)
            }
            MemorySystemKind::Cxl { link, channels } => {
                let backend = CxlMemory::new(link, &self.config.dram, *channels);
                self.run_with(backend)
            }
        }
    }

    /// Run with a telemetry sink attached. Returns the (unchanged)
    /// [`RunReport`], the sink carrying whatever it recorded, and a
    /// [`MetricsRegistry`] snapshot of hierarchy, backend, and prefill-cache
    /// metrics. `run()` is exactly `run_with_telemetry(NullTelemetry).0`
    /// minus the registry harvest, so figure/table outputs are byte-identical
    /// whether or not telemetry is attached.
    pub fn run_with_telemetry<T: TelemetrySink>(self, tel: T) -> (RunReport, T, MetricsRegistry) {
        match &self.config.memory {
            MemorySystemKind::DirectDdr { channels } => {
                let backend = MultiChannel::new(&self.config.dram, *channels);
                self.run_with_sink(backend, tel)
            }
            MemorySystemKind::Cxl { link, channels } => {
                let backend = CxlMemory::new(link, &self.config.dram, *channels);
                self.run_with_sink(backend, tel)
            }
        }
    }

    fn run_with<B: MemoryBackend>(self, backend: B) -> RunReport {
        self.run_with_sink(backend, NullTelemetry).0
    }

    fn run_with_sink<B: MemoryBackend, T: TelemetrySink>(
        self,
        backend: B,
        tel: T,
    ) -> (RunReport, T, MetricsRegistry) {
        let cfg = &self.config;
        let hier_cfg = HierarchyConfig {
            mem_channels: cfg.ddr_channels(),
            seed: cfg.seed ^ 0x11EC,
            calm_epoch: cfg.calm_epoch,
            prefetch: cfg.prefetch,
            ..HierarchyConfig::table_iii(
                cfg.cores,
                cfg.ddr_channels(),
                cfg.llc_mb_per_core,
                cfg.peak_bandwidth_gbs(),
                cfg.calm,
            )
        };
        let mut hierarchy = Hierarchy::with_telemetry(hier_cfg, backend, tel);

        // Functional cache prefill: stand-in for the paper's 50 M-instruction
        // warmup. Each active core streams its own access pattern through
        // the arrays until the LLC is effectively full (or the working set
        // is exhausted), so the measured window starts at dirty steady
        // state — evictions, and therefore memory write traffic, flow from
        // the first cycle.
        let dbg_t0 = std::time::Instant::now();
        // Registry workloads are deterministic, so the warmed state is fully
        // determined by the memo key; a hit replaces the whole prefill with
        // an array copy. Trace-file runs bypass the memo (a path name does
        // not pin the file's contents).
        let memo_key: Option<PrefillKey> = self.trace_file.is_none().then(|| {
            (
                self.workloads.iter().map(|w| w.name.to_string()).collect(),
                cfg.seed,
                cfg.cores,
                cfg.active_cores,
                cfg.llc_mb_per_core.to_bits(),
            )
        });
        let cached =
            memo_key.as_ref().and_then(|k| PREFILL_MEMO.lock().unwrap().get(k).map(Arc::clone));
        if let Some(state) = cached {
            hierarchy.import_prefill_state(&state);
        } else {
            let llc_lines_total =
                coaxial_sim::trunc_usize(cfg.llc_mb_per_core * 1024.0 * 1024.0 / 64.0) * cfg.cores;
            let round_ops = (llc_lines_total / cfg.active_cores.max(1)).max(4096);
            // The access streams depend on the workloads and seed but not the
            // geometry, so reuse the previous run's generated prefix (and its
            // paused generators) when the run is a same-workload sibling.
            let gen_key: PrefillGenKey = (self.workload_names(), cfg.seed, cfg.active_cores);
            let parked = if self.trace_file.is_none() {
                PREFILL_GEN.lock().unwrap().take(&gen_key)
            } else {
                None
            };
            let mut gen = parked.unwrap_or_else(|| {
                let traces =
                    (0..cfg.active_cores).map(|i| self.trace_for(i, cfg.seed ^ 0xF111)).collect();
                PrefillGen::new(traces)
            });
            // The prefill streams multiples of the LLC capacity through arrays
            // far larger than the host's caches, so each probe is a host memory
            // miss. Walking a pre-generated round and prefetching the tag sets
            // a few accesses ahead overlaps those misses; the prefill_access
            // call sequence — and therefore the warmed state — is unchanged.
            const PREFETCH_AHEAD: usize = 8;
            let mut consumed = 0usize;
            for _round in 0..8 {
                for i in 0..cfg.active_cores {
                    // next_access advances the generator exactly like next_op
                    // but skips the gap math the prefill discards.
                    let stream = gen.stream(i, consumed + round_ops);
                    for j in consumed..consumed + round_ops {
                        if let Some(&(ahead, _)) = stream.get(j + PREFETCH_AHEAD) {
                            hierarchy.prefill_prefetch(coaxial_sim::small_u32(i), ahead);
                        }
                        let (line, is_store) = stream[j];
                        hierarchy.prefill_access(coaxial_sim::small_u32(i), line, is_store);
                    }
                }
                consumed += round_ops;
                let [_, _, (llc_valid, _)] = hierarchy.occupancy();
                if llc_valid >= llc_lines_total * 9 / 10 {
                    break;
                }
            }
            if self.trace_file.is_none() {
                let bytes = gen.approx_bytes();
                PREFILL_GEN.lock().unwrap().insert(gen_key, gen, bytes);
            }
            if let Some(k) = memo_key {
                let state = Arc::new(hierarchy.export_prefill_state());
                let bytes = state.approx_bytes();
                PREFILL_MEMO.lock().unwrap().insert(k, state, bytes);
            }
        }
        hierarchy.finish_prefill();
        let dbg_prefill = dbg_t0.elapsed();

        let mut cores: Vec<Core> = (0..cfg.active_cores)
            .map(|i| {
                Core::new(
                    coaxial_sim::small_u32(i),
                    CoreParams::default(),
                    self.trace_for(i, cfg.seed),
                )
            })
            .collect();

        let max_cycles = if self.max_cycles > 0 {
            self.max_cycles
        } else {
            // Generous cap: even at IPC 0.01 the budget fits.
            (self.warmup + self.instructions) * 120
        };

        let skip = self.cycle_skip.unwrap_or_else(coaxial_sim::env::cycle_skip);
        let kind = self.engine.unwrap_or_else(EngineKind::from_env);

        let params =
            RunParams { warmup: self.warmup, instructions: self.instructions, max_cycles, skip };
        let outcome = match kind {
            EngineKind::Event => engine::run_event(&params, &mut cores, &mut hierarchy),
            EngineKind::Lockstep => engine::run_lockstep(&params, &mut cores, &mut hierarchy),
        };
        let now = outcome.now;
        let finish_ipc = outcome.finish_ipc;
        if coaxial_sim::env::debug() {
            eprintln!(
                "engine-debug: engine={} now={now} skipped={} ({:.1}%) blocked_iters={} prefill={:.3}s loop={:.3}s",
                kind.name(),
                outcome.stats.skipped_cycles,
                100.0 * outcome.stats.skipped_cycles as f64 / now.max(1) as f64,
                outcome.stats.blocked_iters,
                dbg_prefill.as_secs_f64(),
                dbg_t0.elapsed().as_secs_f64() - dbg_prefill.as_secs_f64()
            );
        }

        let per_core_ipc: Vec<f64> = cores
            .iter()
            .enumerate()
            .map(|(i, c)| finish_ipc[i].unwrap_or_else(|| c.ipc()))
            .collect();
        let ipc = per_core_ipc.iter().sum::<f64>() / per_core_ipc.len() as f64;

        let hier = hierarchy.stats();
        let ddr = hierarchy.backend().ddr_stats();
        let total_instr: u64 = cores.iter().map(|c| c.retired.min(self.instructions)).sum();
        let mpki = if total_instr == 0 {
            0.0
        } else {
            hier.llc_misses as f64 * 1000.0 / total_instr as f64
        };
        let breakdown_ns = hier.breakdown_ns();
        let window_ns = ddr.elapsed_cycles as f64 * coaxial_sim::NS_PER_CYCLE;
        let (read_gbs, write_gbs) = if window_ns > 0.0 {
            (ddr.read_bytes as f64 / window_ns, ddr.write_bytes as f64 / window_ns)
        } else {
            (0.0, 0.0)
        };
        let peak = cfg.peak_bandwidth_gbs();
        let report = RunReport {
            config_name: cfg.name.clone(),
            workload_names: self.workload_names(),
            ipc,
            per_core_ipc,
            mpki,
            breakdown_ns,
            l2_miss_latency_ns: hier.mean_l2_miss_latency_cycles() * coaxial_sim::NS_PER_CYCLE,
            read_gbs,
            write_gbs,
            utilization: (read_gbs + write_gbs) / peak,
            bandwidth_gbs: read_gbs + write_gbs,
            llc_miss_ratio: hier.llc_miss_ratio(),
            cxl_link_utilization: hierarchy.backend().link_utilization(),
            calm: hier.calm,
            hier,
            ddr,
            cycles: now,
            instructions: self.instructions,
        };
        // Harvest-time metrics snapshot: hierarchy counters, backend
        // per-channel counters, and the process-wide prefill caches.
        let mut metrics = MetricsRegistry::new();
        report.hier.export_metrics(&mut metrics, "hier");
        hierarchy.backend().export_metrics(&mut metrics, "mem");
        // Engine skip-path counters: identical across engines by the
        // visited-cycle equivalence argument (see engine.rs module docs),
        // so the differential test may compare them byte-for-byte.
        metrics.set_counter("engine.skipped_cycles", outcome.stats.skipped_cycles);
        metrics.set_counter("engine.blocked_iters", outcome.stats.blocked_iters);
        prefill_cache_metrics(&mut metrics);
        (report, hierarchy.into_telemetry(), metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_cache::CalmPolicy;

    fn quick(config: SystemConfig, wl: &str) -> RunReport {
        let w = Workload::by_name(wl).expect("workload exists");
        Simulation::new(config, w).instructions_per_core(4_000).warmup(1_000).run()
    }

    #[test]
    fn baseline_run_produces_sane_report() {
        let r = quick(SystemConfig::ddr_baseline(), "stream-copy");
        assert!(r.ipc > 0.01 && r.ipc < 4.0, "ipc = {}", r.ipc);
        assert!(r.mpki > 1.0, "stream must miss: mpki = {}", r.mpki);
        assert!(r.utilization > 0.05, "utilization = {}", r.utilization);
        assert!(r.read_gbs > 0.0 && r.write_gbs > 0.0);
        let (on, q, s, cxl) = r.breakdown_ns;
        assert!(on >= 0.0 && q >= 0.0 && s > 0.0);
        assert_eq!(cxl, 0.0, "no CXL component on the DDR baseline");
    }

    #[test]
    fn coaxial_reports_cxl_latency_component() {
        let r = quick(SystemConfig::coaxial_4x(), "stream-copy");
        let (_, _, _, cxl) = r.breakdown_ns;
        assert!(cxl > 30.0, "CXL component should be ≈50 ns, got {cxl}");
    }

    #[test]
    fn bandwidth_bound_workload_gains_on_coaxial() {
        let base = quick(SystemConfig::ddr_baseline(), "stream-copy");
        let coax = quick(SystemConfig::coaxial_4x(), "stream-copy");
        let speedup = coax.speedup_over(&base);
        assert!(speedup > 1.2, "stream-copy speedup = {speedup:.2}");
    }

    #[test]
    fn utilization_drops_on_coaxial_for_saturating_workload() {
        let base = quick(SystemConfig::ddr_baseline(), "stream-add");
        let coax = quick(SystemConfig::coaxial_4x(), "stream-add");
        assert!(
            coax.utilization < base.utilization,
            "relative utilization must drop: {} vs {}",
            coax.utilization,
            base.utilization
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(SystemConfig::coaxial_4x(), "mcf");
        let b = quick(SystemConfig::coaxial_4x(), "mcf");
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.hier.l2_misses, b.hier.l2_misses);
    }

    #[test]
    fn single_active_core_runs() {
        let cfg = SystemConfig::ddr_baseline().with_active_cores(1);
        let w = Workload::by_name("gcc").unwrap();
        let r = Simulation::new(cfg, w).instructions_per_core(3_000).warmup(500).run();
        assert_eq!(r.per_core_ipc.len(), 1);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn mix_runs_with_heterogeneous_workloads() {
        let mix = coaxial_workloads::mixes::mix(0, 12);
        let cfg = SystemConfig::ddr_baseline();
        let r = Simulation::new_mix(cfg, &mix).instructions_per_core(2_000).warmup(500).run();
        assert_eq!(r.workload_names.len(), 12);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn cycle_skipping_is_bit_identical() {
        // One DDR config and one CXL config, on a latency-bound workload
        // (frequent full-stall spans, so skipping actually engages) and a
        // bandwidth-bound one (skipping rarely engages; must still be exact).
        for (cfg, wl) in [
            (SystemConfig::ddr_baseline(), "mcf"),
            (SystemConfig::coaxial_4x(), "raytrace"),
            (SystemConfig::coaxial_4x(), "stream-copy"),
        ] {
            let run = |skip: bool| {
                let w = Workload::by_name(wl).expect("workload exists");
                Simulation::new(cfg.clone(), w)
                    .instructions_per_core(4_000)
                    .warmup(1_000)
                    .cycle_skip(skip)
                    .run()
            };
            let fast = run(true);
            let slow = run(false);
            assert_eq!(fast.cycles, slow.cycles, "{wl}: cycle count must match");
            assert_eq!(fast.ipc, slow.ipc, "{wl}: IPC must be bit-identical");
            assert_eq!(fast.per_core_ipc, slow.per_core_ipc, "{wl}: per-core IPC");
            assert_eq!(fast.hier.l2_misses, slow.hier.l2_misses, "{wl}: l2 misses");
            assert_eq!(fast.hier.llc_misses, slow.hier.llc_misses, "{wl}: llc misses");
            assert_eq!(fast.ddr.reads, slow.ddr.reads, "{wl}: ddr reads");
            assert_eq!(fast.ddr.writes, slow.ddr.writes, "{wl}: ddr writes");
            assert_eq!(fast.ddr.act, slow.ddr.act, "{wl}: ACT commands");
            assert_eq!(fast.ddr.pre, slow.ddr.pre, "{wl}: PRE commands");
            assert_eq!(fast.ddr.refab, slow.ddr.refab, "{wl}: refreshes");
            assert_eq!(fast.ddr.elapsed_cycles, slow.ddr.elapsed_cycles, "{wl}: window");
            assert_eq!(fast.breakdown_ns, slow.breakdown_ns, "{wl}: breakdown");
            assert_eq!(fast.bandwidth_gbs, slow.bandwidth_gbs, "{wl}: bandwidth");
        }
    }

    #[test]
    fn skip_from_cycle_zero_is_exact_in_both_engines() {
        // Regression test for the skip-probe underflow: with no warmup the
        // very first skip attempt can fire while `now` is still small, and
        // the hierarchy probe's `now - 1` horizon argument used to underflow
        // in debug builds (now saturating, see `engine::run_lockstep`).
        // raytrace is latency-bound, so skip spans appear immediately.
        let run = |kind: EngineKind, skip: bool| {
            let w = Workload::by_name("raytrace").expect("workload exists");
            Simulation::new(SystemConfig::coaxial_4x(), w)
                .instructions_per_core(3_000)
                .warmup(0)
                .cycle_skip(skip)
                .engine(kind)
                .run()
        };
        let oracle = run(EngineKind::Lockstep, false);
        for kind in [EngineKind::Lockstep, EngineKind::Event] {
            let fast = run(kind, true);
            assert_eq!(fast.cycles, oracle.cycles, "{}: cycle count", kind.name());
            assert_eq!(fast.ipc, oracle.ipc, "{}: IPC", kind.name());
            assert_eq!(fast.per_core_ipc, oracle.per_core_ipc, "{}: per-core IPC", kind.name());
            assert_eq!(fast.ddr.reads, oracle.ddr.reads, "{}: ddr reads", kind.name());
            assert_eq!(fast.ddr.writes, oracle.ddr.writes, "{}: ddr writes", kind.name());
            assert_eq!(fast.breakdown_ns, oracle.breakdown_ns, "{}: breakdown", kind.name());
        }
    }

    #[test]
    fn calm_serial_override_disables_calm_traffic() {
        let cfg = SystemConfig::coaxial_4x().with_calm(CalmPolicy::Serial);
        let r = quick(cfg, "bwaves");
        assert_eq!(r.calm.true_pos + r.calm.false_pos, 0, "serial never CALMs");
        assert_eq!(r.hier.wasted_mem_reads, 0);
    }
}
