//! The simulation driver: builds a configured server, runs a workload (or
//! mix) with warmup, and harvests a [`RunReport`].
//!
//! Methodology follows the paper §V: the same workload is deployed on all
//! active cores (or one workload per core for mixes), simulation warms up
//! for a fixed instruction count per core, statistics reset, and the
//! measured window ends when every active core has retired its
//! instruction budget (a core that finishes early keeps executing to
//! maintain memory pressure, but its IPC is frozen at its finish line —
//! ChampSim semantics).

use std::path::PathBuf;
use std::sync::{Arc, LazyLock, Mutex, Once};

use coaxial_cache::{CalmStats, HierStats, Hierarchy, HierarchyConfig, PrefillState};
use coaxial_cpu::{Core, CoreParams, FileTrace, TraceSource};
use coaxial_cxl::CxlMemory;
use coaxial_dram::{ChannelStats, MemoryBackend, MultiChannel};
use coaxial_sim::checkpoint::codec;
use coaxial_sim::{CheckpointStore, Cycle, KeyHasher, Snapshot};
use coaxial_telemetry::{MetricsRegistry, NullTelemetry, TelemetrySink};
use coaxial_workloads::Workload;
use serde::Serialize;

use crate::config::{FunctionalConfig, MemorySystemKind, SystemConfig};
use crate::engine::{self, EngineKind, RunParams};

/// Default measured instructions per core. The paper runs 200 M after
/// 50 M of warmup on a cluster; this reproduction defaults to a laptop-
/// scale budget and honours `COAXIAL_INSTR` / `COAXIAL_WARMUP` overrides.
pub const DEFAULT_INSTRUCTIONS: u64 = 120_000;
pub const DEFAULT_WARMUP: u64 = 20_000;

/// Results of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    pub config_name: String,
    pub workload_names: Vec<String>,
    /// Mean per-core IPC over active cores.
    pub ipc: f64,
    pub per_core_ipc: Vec<f64>,
    /// Demand LLC misses per kilo-instruction (aggregate).
    pub mpki: f64,
    /// Mean L2-miss latency components, ns: (on-chip, queue, DRAM, CXL).
    pub breakdown_ns: (f64, f64, f64, f64),
    /// Mean total L2-miss latency, ns.
    pub l2_miss_latency_ns: f64,
    /// Achieved memory bandwidth, GB/s (reads, writes).
    pub read_gbs: f64,
    pub write_gbs: f64,
    /// Bandwidth utilization relative to this system's own DDR peak.
    pub utilization: f64,
    /// Utilization expressed against the *baseline* single channel
    /// (shows absolute traffic growth, Fig. 5 bottom).
    pub bandwidth_gbs: f64,
    pub llc_miss_ratio: f64,
    /// Mean (TX, RX) CXL link utilization (None on the DDR baseline).
    pub cxl_link_utilization: Option<(f64, f64)>,
    pub calm: CalmStats,
    /// Raw hierarchy statistics.
    pub hier: HierStats,
    /// Raw aggregated DDR statistics.
    pub ddr: ChannelStats,
    /// Measured-window length in cycles.
    pub cycles: Cycle,
    /// Per-core retired instructions in the measured window.
    pub instructions: u64,
}

impl RunReport {
    /// Speedup of this run over a baseline run (IPC ratio).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if baseline.ipc == 0.0 {
            0.0
        } else {
            self.ipc / baseline.ipc
        }
    }
}

/// Content-addressed store of warmed post-prefill machine state, keyed by
/// [`prefill_state_key`] — a canonical hash of the *functional* config
/// slice. Every timing-only sibling of a run (CXL latency, DRAM grade, CALM
/// policy, prefetch distance — anything in `TimingConfig`) restores the
/// same snapshot instead of re-simulating prefill; lint E03 enforces that
/// the prefill call graph cannot read timing fields, which is what makes
/// the key sound. The memory tier is bounded by `COAXIAL_PREFILL_CACHE_MB`;
/// `COAXIAL_CHECKPOINT_DIR` adds a disk tier that survives process
/// restarts. Counters surface as `server.checkpoint.state.*` via
/// [`checkpoint_metrics`].
static PREFILL_STATE: LazyLock<Mutex<CheckpointStore<PrefillState>>> = LazyLock::new(|| {
    Mutex::new(CheckpointStore::new(
        prefill_cache_budget(),
        coaxial_sim::env::checkpoint_dir(),
        "prefill-state",
    ))
});

/// Store of generated prefill *access streams* plus generator cursors, keyed
/// by [`prefill_stream_key`] — strictly less than the state key: the stream
/// is a property of the workloads and seed alone, so two geometries that
/// cannot share warmed state (baseline vs. COAXIAL, which trades LLC slices
/// for CXL controllers) still replay the same generated accesses. Memory
/// tier only: streams regenerate in milliseconds from parked cursors, so a
/// disk tier would spend I/O to save nothing. Counters surface as
/// `server.checkpoint.streams.*`.
static PREFILL_STREAMS: LazyLock<Mutex<CheckpointStore<StreamCheckpoint>>> = LazyLock::new(|| {
    Mutex::new(CheckpointStore::new(prefill_cache_budget(), None, "prefill-streams"))
});

/// Above this budget the prefill working set outgrows the host LLC and the
/// restore path turns memory-bandwidth-bound: the 288-run sweep is flat
/// from 32–128 MB and ~40% slower at 256 MB (see `env::prefill_cache_mb`).
const PREFILL_BUDGET_CLIFF_MB: u64 = 128;

static BUDGET_WARNING: Once = Once::new();

/// Shared byte budget for each checkpoint store's memory tier. Warns once
/// per process when the knob is past the measured performance cliff.
fn prefill_cache_budget() -> u64 {
    let mb = coaxial_sim::env::prefill_cache_mb();
    if mb > PREFILL_BUDGET_CLIFF_MB {
        BUDGET_WARNING.call_once(|| {
            eprintln!(
                "coaxial: COAXIAL_PREFILL_CACHE_MB={mb} exceeds the measured {PREFILL_BUDGET_CLIFF_MB} MB \
                 cliff; restores go memory-bandwidth-bound past it. Prefer COAXIAL_CHECKPOINT_DIR \
                 for large retained sets (disk tier keeps evicted snapshots)."
            );
        });
    }
    mb * 1024 * 1024
}

/// Per-core prefill access streams plus the paused generators' cursor
/// snapshots ([`TraceSource::save_state`]), captured after producing
/// exactly `streams[i].len()` accesses. A sibling run replays the streams
/// zero-copy and, if it needs more, rebuilds the generator and resumes it
/// from the cursor instead of regenerating from the start.
struct StreamCheckpoint {
    streams: Vec<Vec<(u64, bool)>>,
    cursors: Vec<Option<Vec<u64>>>,
}

impl StreamCheckpoint {
    /// Approximate heap footprint for LRU accounting (streams dominate).
    fn approx_bytes(&self) -> u64 {
        let streams: usize =
            self.streams.iter().map(|s| s.capacity() * std::mem::size_of::<(u64, bool)>()).sum();
        let cursors: usize = self.cursors.iter().flatten().map(|c| c.len() * 8 + 64).sum();
        (streams + cursors) as u64
    }
}

/// Codec: line addresses fit 63 bits, so each access packs into one word
/// (`line << 1 | is_store`). The store is currently memory-only, but the
/// impl keeps the disk-tier option open and documents the canonical shape.
impl Snapshot for StreamCheckpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.streams.len() as u64);
        for s in &self.streams {
            codec::put_u64(out, s.len() as u64);
            for &(line, is_store) in s {
                codec::put_u64(out, line << 1 | u64::from(is_store));
            }
        }
        for c in &self.cursors {
            match c {
                Some(words) => {
                    codec::put_u64(out, 1);
                    codec::put_u64s(out, words);
                }
                None => codec::put_u64(out, 0),
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = codec::Reader::new(bytes);
        let n = usize::try_from(r.u64()?).ok()?;
        if n > 4096 {
            return None;
        }
        let streams = (0..n)
            .map(|_| {
                let words = r.u64s()?;
                Some(words.iter().map(|&w| (w >> 1, w & 1 != 0)).collect())
            })
            .collect::<Option<Vec<Vec<(u64, bool)>>>>()?;
        let cursors = (0..n)
            .map(|_| match r.u64()? {
                0 => Some(None),
                1 => Some(Some(r.u64s()?)),
                _ => None,
            })
            .collect::<Option<Vec<Option<Vec<u64>>>>>()?;
        r.done().then_some(Self { streams, cursors })
    }
}

/// One core's view of a prefill stream during replay: a zero-copy prefix
/// borrowed from the parked [`StreamCheckpoint`] (the common sibling-run
/// case reads it untouched), a locally generated extension, and the
/// generator that produces the extension — rebuilt lazily from the parked
/// cursor, or by fast-forwarding when the cursor cannot be restored.
struct CoreStream<'a> {
    base: &'a [(u64, bool)],
    /// Generator cursor valid at the end of `base`.
    cursor: Option<&'a [u64]>,
    ext: Vec<(u64, bool)>,
    gen: Option<Box<dyn TraceSource + Send>>,
}

impl CoreStream<'_> {
    fn len(&self) -> usize {
        self.base.len() + self.ext.len()
    }

    /// Access `j`, defined for `j < self.len()`.
    fn at(&self, j: usize) -> (u64, bool) {
        if j < self.base.len() {
            self.base[j]
        } else {
            self.ext[j - self.base.len()]
        }
    }

    /// Extend the stream to at least `len` accesses. `make_gen` constructs
    /// the core's generator from scratch; it is invoked at most once, and
    /// only when the parked prefix runs out.
    fn ensure(&mut self, len: usize, make_gen: impl FnOnce() -> Box<dyn TraceSource + Send>) {
        if self.len() >= len {
            return;
        }
        if self.gen.is_none() {
            let mut g = make_gen();
            let resumed = self.cursor.is_some_and(|c| g.restore_state(c));
            if !resumed {
                // No (or unusable) cursor: fast-forward through the prefix
                // we already hold. Generators are deterministic, so the
                // re-run generator is call-for-call equivalent.
                for _ in 0..self.len() {
                    let _ = g.next_access();
                }
            }
            self.gen = Some(g);
        }
        let have = self.len();
        let g = self.gen.as_mut().expect("generator just installed");
        self.ext.extend((have..len).map(|_| g.next_access()));
    }
}

/// Canonical content address of a warmed prefill state: every functional
/// field plus the per-core workload names. Timing fields are deliberately
/// absent — that is the whole point of the store (and lint E03's job).
fn prefill_state_key(names: &[String], func: &FunctionalConfig) -> u128 {
    let mut h = KeyHasher::new("coaxial/prefill-state/v1");
    h.write_u64(names.len() as u64);
    for n in names {
        h.write_str(n);
    }
    h.write_u64(func.seed);
    h.write_u64(func.cores as u64);
    h.write_u64(func.active_cores as u64);
    h.write_u64(func.llc_mb_per_core.to_bits());
    h.finish()
}

/// Content address of the prefill access streams: workloads, seed, and the
/// active-core count (which fixes how many streams exist) — but *not* the
/// cache geometry, so baseline and COAXIAL twins share one entry.
fn prefill_stream_key(names: &[String], func: &FunctionalConfig) -> u128 {
    let mut h = KeyHasher::new("coaxial/prefill-streams/v1");
    h.write_u64(names.len() as u64);
    for n in names {
        h.write_str(n);
    }
    h.write_u64(func.seed);
    h.write_u64(func.active_cores as u64);
    h.finish()
}

/// Export both checkpoint stores' counters into `reg` under
/// `server.checkpoint.*`. The counters are process-wide (the stores are
/// shared across runs and threads), so sweep reports see the cumulative
/// numbers.
pub fn checkpoint_metrics(reg: &mut MetricsRegistry) {
    let mut export = |name: &str, c: coaxial_sim::CheckpointCounters| {
        reg.set_counter(&format!("server.checkpoint.{name}.mem_hits"), c.mem_hits);
        reg.set_counter(&format!("server.checkpoint.{name}.disk_hits"), c.disk_hits);
        reg.set_counter(&format!("server.checkpoint.{name}.misses"), c.misses);
        reg.set_counter(&format!("server.checkpoint.{name}.inserts"), c.inserts);
        reg.set_counter(&format!("server.checkpoint.{name}.evictions"), c.evictions);
        reg.set_counter(&format!("server.checkpoint.{name}.disk_errors"), c.disk_errors);
        reg.set_gauge(&format!("server.checkpoint.{name}.entries"), c.entries as f64);
        reg.set_gauge(&format!("server.checkpoint.{name}.bytes"), c.bytes as f64);
    };
    export("state", PREFILL_STATE.lock().unwrap().counters());
    export("streams", PREFILL_STREAMS.lock().unwrap().counters());
    let over = coaxial_sim::env::prefill_cache_mb() > PREFILL_BUDGET_CLIFF_MB;
    reg.set_gauge("server.checkpoint.budget_over_cliff", f64::from(u8::from(over)));
}

/// Builder for one simulation run. Fields are `pub(crate)` so the sampling
/// driver (`crate::sampling`) can reuse the builder, the prefill path, and
/// the trace plumbing without widening the public API.
pub struct Simulation {
    pub(crate) config: SystemConfig,
    /// One workload per core (replicated for homogeneous runs).
    pub(crate) workloads: Vec<&'static Workload>,
    /// Replay a captured `.cxtr` trace on every core instead of a
    /// registry workload (see `coaxial_cpu::tracefile`).
    pub(crate) trace_file: Option<PathBuf>,
    pub(crate) instructions: u64,
    pub(crate) warmup: u64,
    pub(crate) max_cycles: Cycle,
    /// Hot-loop cycle skipping; `None` follows `COAXIAL_SKIP` (default on).
    pub(crate) cycle_skip: Option<bool>,
    /// Run-loop engine; `None` follows `COAXIAL_ENGINE` (default: event).
    pub(crate) engine: Option<EngineKind>,
}

impl Simulation {
    /// Homogeneous run: the same workload on every active core (§V).
    pub fn new(config: SystemConfig, workload: &'static Workload) -> Self {
        let workloads = vec![workload; config.functional.cores];
        Self::with_workloads(config, workloads)
    }

    /// Heterogeneous run (Fig. 6 mixes): one workload per core.
    pub fn new_mix(config: SystemConfig, mix: &[&'static Workload]) -> Self {
        match Self::try_new_mix(config, mix) {
            Ok(sim) => sim,
            Err(e) => panic!("mix must name one workload per core: {e}"),
        }
    }

    /// Fallible twin of [`Self::new_mix`]: a mix that does not name
    /// exactly one workload per core is a [`ConfigError`] instead of a
    /// panic, so service front-ends can answer HTTP 400.
    pub fn try_new_mix(
        config: SystemConfig,
        mix: &[&'static Workload],
    ) -> Result<Self, crate::config::ConfigError> {
        if mix.len() != config.functional.cores {
            return Err(crate::config::ConfigError::WorkloadMixLength {
                got: mix.len(),
                want: config.functional.cores,
            });
        }
        Ok(Self::with_workloads(config, mix.to_vec()))
    }

    fn with_workloads(config: SystemConfig, workloads: Vec<&'static Workload>) -> Self {
        let instructions = coaxial_sim::env::instructions(DEFAULT_INSTRUCTIONS);
        let warmup = coaxial_sim::env::warmup(DEFAULT_WARMUP);
        Self {
            config,
            workloads,
            trace_file: None,
            instructions,
            warmup,
            max_cycles: 0,
            cycle_skip: None,
            engine: None,
        }
    }

    /// Replay a captured trace file on every active core.
    pub fn from_trace_file(config: SystemConfig, path: impl Into<PathBuf>) -> Self {
        let mut s = Self::with_workloads(config, Vec::new());
        s.trace_file = Some(path.into());
        s
    }

    /// Build the trace stream for core `i` (registry workload or file).
    pub(crate) fn trace_for(&self, i: usize, seed: u64) -> Box<dyn TraceSource + Send> {
        match &self.trace_file {
            Some(path) => Box::new(
                FileTrace::open(path).unwrap_or_else(|e| panic!("cannot open trace {path:?}: {e}")),
            ),
            None => self.workloads[i].trace(coaxial_sim::small_u32(i), seed),
        }
    }

    pub(crate) fn workload_names(&self) -> Vec<String> {
        match &self.trace_file {
            Some(path) => vec![path.display().to_string()],
            None => self.workloads.iter().map(|w| w.name.to_string()).collect(),
        }
    }

    /// Measured instructions per core (overrides `COAXIAL_INSTR`).
    pub fn instructions_per_core(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Warmup instructions per core (overrides `COAXIAL_WARMUP`).
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Hard cycle cap (default: scaled to the instruction budget).
    pub fn max_cycles(mut self, n: Cycle) -> Self {
        self.max_cycles = n;
        self
    }

    /// Force hot-loop cycle skipping on or off (overrides `COAXIAL_SKIP`).
    /// Skipping is statistically invisible: reports are bit-identical either
    /// way (see DESIGN.md "Performance & parallelism").
    pub fn cycle_skip(mut self, on: bool) -> Self {
        self.cycle_skip = Some(on);
        self
    }

    /// Force a run-loop engine (overrides `COAXIAL_ENGINE`). Both engines
    /// produce bit-identical reports, telemetry, and metrics; `Lockstep` is
    /// the slow differential-testing oracle (see `engine` module docs).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = Some(kind);
        self
    }

    /// Run to completion and report.
    pub fn run(self) -> RunReport {
        match &self.config.timing.memory {
            MemorySystemKind::DirectDdr { channels } => {
                let backend = MultiChannel::new(&self.config.timing.dram, *channels);
                self.run_with(backend)
            }
            MemorySystemKind::Cxl { link, channels } => {
                let backend = CxlMemory::new(link, &self.config.timing.dram, *channels);
                self.run_with(backend)
            }
        }
    }

    /// Run with a telemetry sink attached. Returns the (unchanged)
    /// [`RunReport`], the sink carrying whatever it recorded, and a
    /// [`MetricsRegistry`] snapshot of hierarchy, backend, and prefill-cache
    /// metrics. `run()` is exactly `run_with_telemetry(NullTelemetry).0`
    /// minus the registry harvest, so figure/table outputs are byte-identical
    /// whether or not telemetry is attached.
    pub fn run_with_telemetry<T: TelemetrySink>(self, tel: T) -> (RunReport, T, MetricsRegistry) {
        match &self.config.timing.memory {
            MemorySystemKind::DirectDdr { channels } => {
                let backend = MultiChannel::new(&self.config.timing.dram, *channels);
                self.run_with_sink(backend, tel)
            }
            MemorySystemKind::Cxl { link, channels } => {
                let backend = CxlMemory::new(link, &self.config.timing.dram, *channels);
                self.run_with_sink(backend, tel)
            }
        }
    }

    fn run_with<B: MemoryBackend>(self, backend: B) -> RunReport {
        self.run_with_sink(backend, NullTelemetry).0
    }

    /// Functional cache prefill: stand-in for the paper's 50 M-instruction
    /// warmup. Each active core streams its own access pattern through the
    /// arrays until the LLC is effectively full (or the working set is
    /// exhausted), so the measured window starts at dirty steady state —
    /// evictions, and therefore memory write traffic, flow from the first
    /// cycle. Returns whether a checkpoint restore replaced the replay.
    ///
    /// Entry point of lint E03's call graph: nothing reachable from here may
    /// read a `TimingConfig` field, because the warmed state is keyed by the
    /// functional slice alone and shared across all timing siblings.
    pub(crate) fn prefill_hierarchy<B: MemoryBackend, T: TelemetrySink>(
        &self,
        hierarchy: &mut Hierarchy<B, T>,
    ) -> bool {
        // Registry workloads are deterministic, so the warmed state is fully
        // determined by the content address; a hit replaces the whole
        // prefill with an array copy (or a disk decode). Trace-file runs
        // bypass the store (a path name does not pin the file's contents).
        let names = self.workload_names();
        let func = &self.config.functional;
        let state_key = self.trace_file.is_none().then(|| prefill_state_key(&names, func));
        if let Some(key) = state_key {
            if let Some(state) = PREFILL_STATE.lock().unwrap().get(key) {
                hierarchy.import_prefill_state(&state);
                return true;
            }
        }
        self.prefill_replay(hierarchy, &names, state_key);
        false
    }

    /// The cold half of [`Simulation::prefill_hierarchy`]: replay the access
    /// streams through the arrays, then checkpoint the warmed state.
    fn prefill_replay<B: MemoryBackend, T: TelemetrySink>(
        &self,
        hierarchy: &mut Hierarchy<B, T>,
        names: &[String],
        state_key: Option<u128>,
    ) {
        let func = &self.config.functional;
        let llc_lines_total =
            coaxial_sim::trunc_usize(func.llc_mb_per_core * 1024.0 * 1024.0 / 64.0) * func.cores;
        let round_ops = (llc_lines_total / func.active_cores.max(1)).max(4096);
        // The access streams depend on the workloads and seed but not the
        // geometry, so replay a same-workload sibling's parked streams
        // zero-copy and resume its generators from their cursors for any
        // tail this geometry needs beyond the parked prefix.
        let stream_key = self.trace_file.is_none().then(|| prefill_stream_key(names, func));
        let parked: Option<Arc<StreamCheckpoint>> =
            stream_key.and_then(|k| PREFILL_STREAMS.lock().unwrap().get(k));
        let mut streams: Vec<CoreStream<'_>> = (0..func.active_cores)
            .map(|i| CoreStream {
                base: parked.as_ref().and_then(|p| p.streams.get(i)).map_or(&[], Vec::as_slice),
                cursor: parked.as_ref().and_then(|p| p.cursors.get(i)).and_then(|c| c.as_deref()),
                ext: Vec::new(),
                gen: None,
            })
            .collect();
        // The prefill streams multiples of the LLC capacity through arrays
        // far larger than the host's caches, so each probe is a host memory
        // miss. Walking a pre-generated round and prefetching the tag sets
        // a few accesses ahead overlaps those misses; the prefill_access
        // call sequence — and therefore the warmed state — is unchanged.
        const PREFETCH_AHEAD: usize = 8;
        let mut consumed = 0usize;
        for _round in 0..8 {
            let limit = consumed + round_ops;
            for (i, s) in streams.iter_mut().enumerate() {
                // next_access advances the generator exactly like next_op
                // but skips the gap math the prefill discards.
                s.ensure(limit, || self.trace_for(i, func.seed ^ 0xF111));
                for j in consumed..limit {
                    // Lookahead stops at the round boundary, exactly like
                    // the slice `get` it replaces, so a parked stream longer
                    // than this geometry's round cannot change the state.
                    if j + PREFETCH_AHEAD < limit {
                        let (ahead, _) = s.at(j + PREFETCH_AHEAD);
                        hierarchy.prefill_prefetch(coaxial_sim::small_u32(i), ahead);
                    }
                    let (line, is_store) = s.at(j);
                    hierarchy.prefill_access(coaxial_sim::small_u32(i), line, is_store);
                }
            }
            consumed = limit;
            let [_, _, (llc_valid, _)] = hierarchy.occupancy();
            if llc_valid >= llc_lines_total * 9 / 10 {
                break;
            }
        }
        if let Some(key) = stream_key {
            // Re-park only when this run grew the streams (or none were
            // parked): the common sibling case read the Arc'd prefix
            // untouched and has nothing new to contribute.
            let extended = streams.iter().any(|s| !s.ext.is_empty());
            if extended || parked.is_none() {
                let merged = StreamCheckpoint {
                    streams: streams
                        .iter()
                        .map(|s| {
                            let mut v = Vec::with_capacity(s.len());
                            v.extend_from_slice(s.base);
                            v.extend_from_slice(&s.ext);
                            v
                        })
                        .collect(),
                    cursors: streams
                        .iter()
                        .map(|s| match &s.gen {
                            Some(g) => g.save_state(),
                            None => s.cursor.map(<[u64]>::to_vec),
                        })
                        .collect(),
                };
                let bytes = merged.approx_bytes();
                PREFILL_STREAMS.lock().unwrap().insert(key, Arc::new(merged), bytes);
            }
        }
        if let Some(key) = state_key {
            let state = Arc::new(hierarchy.export_prefill_state());
            let bytes = state.approx_bytes();
            PREFILL_STATE.lock().unwrap().insert(key, state, bytes);
        }
    }

    fn run_with_sink<B: MemoryBackend, T: TelemetrySink>(
        self,
        backend: B,
        tel: T,
    ) -> (RunReport, T, MetricsRegistry) {
        let cfg = &self.config;
        let func = &cfg.functional;
        let hier_cfg = HierarchyConfig {
            mem_channels: cfg.ddr_channels(),
            seed: func.seed ^ 0x11EC,
            calm_epoch: cfg.timing.calm_epoch,
            prefetch: cfg.timing.prefetch,
            ..HierarchyConfig::table_iii(
                func.cores,
                cfg.ddr_channels(),
                func.llc_mb_per_core,
                cfg.peak_bandwidth_gbs(),
                cfg.timing.calm,
            )
        };
        let mut hierarchy = Hierarchy::with_telemetry(hier_cfg, backend, tel);

        let dbg_t0 = std::time::Instant::now();
        let restored = self.prefill_hierarchy(&mut hierarchy);
        hierarchy.finish_prefill();
        let dbg_prefill = dbg_t0.elapsed();

        let mut cores: Vec<Core> = (0..func.active_cores)
            .map(|i| {
                Core::new(
                    coaxial_sim::small_u32(i),
                    CoreParams::default(),
                    self.trace_for(i, func.seed),
                )
            })
            .collect();

        let max_cycles = if self.max_cycles > 0 {
            self.max_cycles
        } else {
            // Generous cap: even at IPC 0.01 the budget fits.
            (self.warmup + self.instructions) * 120
        };

        let skip = self.cycle_skip.unwrap_or_else(coaxial_sim::env::cycle_skip);
        let kind = self.engine.unwrap_or_else(EngineKind::from_env);

        let params =
            RunParams { warmup: self.warmup, instructions: self.instructions, max_cycles, skip };
        let outcome = match kind {
            EngineKind::Event => engine::run_event(&params, &mut cores, &mut hierarchy),
            EngineKind::Lockstep => engine::run_lockstep(&params, &mut cores, &mut hierarchy),
        };
        let now = outcome.now;
        let finish_ipc = outcome.finish_ipc;
        if coaxial_sim::env::debug() {
            eprintln!(
                "engine-debug: engine={} now={now} skipped={} ({:.1}%) blocked_iters={} prefill={:.3}s (restored={restored}) loop={:.3}s",
                kind.name(),
                outcome.stats.skipped_cycles,
                100.0 * outcome.stats.skipped_cycles as f64 / now.max(1) as f64,
                outcome.stats.blocked_iters,
                dbg_prefill.as_secs_f64(),
                dbg_t0.elapsed().as_secs_f64() - dbg_prefill.as_secs_f64()
            );
        }

        let per_core_ipc: Vec<f64> = cores
            .iter()
            .enumerate()
            .map(|(i, c)| finish_ipc[i].unwrap_or_else(|| c.ipc()))
            .collect();
        let ipc = per_core_ipc.iter().sum::<f64>() / per_core_ipc.len() as f64;

        let hier = hierarchy.stats();
        let ddr = hierarchy.backend().ddr_stats();
        let total_instr: u64 = cores.iter().map(|c| c.retired.min(self.instructions)).sum();
        let mpki = if total_instr == 0 {
            0.0
        } else {
            hier.llc_misses as f64 * 1000.0 / total_instr as f64
        };
        let breakdown_ns = hier.breakdown_ns();
        let window_ns = coaxial_sim::cycles_to_ns(ddr.elapsed_cycles);
        let (read_gbs, write_gbs) = if window_ns > 0.0 {
            (ddr.read_bytes as f64 / window_ns, ddr.write_bytes as f64 / window_ns)
        } else {
            (0.0, 0.0)
        };
        let peak = cfg.peak_bandwidth_gbs();
        let report = RunReport {
            config_name: cfg.name.clone(),
            workload_names: self.workload_names(),
            ipc,
            per_core_ipc,
            mpki,
            breakdown_ns,
            l2_miss_latency_ns: coaxial_sim::cycles_f64_to_ns(hier.mean_l2_miss_latency_cycles()),
            read_gbs,
            write_gbs,
            utilization: (read_gbs + write_gbs) / peak,
            bandwidth_gbs: read_gbs + write_gbs,
            llc_miss_ratio: hier.llc_miss_ratio(),
            cxl_link_utilization: hierarchy.backend().link_utilization(),
            calm: hier.calm,
            hier,
            ddr,
            cycles: now,
            instructions: self.instructions,
        };
        // Harvest-time metrics snapshot: hierarchy counters, backend
        // per-channel counters, and the process-wide prefill caches.
        let mut metrics = MetricsRegistry::new();
        report.hier.export_metrics(&mut metrics, "hier");
        hierarchy.backend().export_metrics(&mut metrics, "mem");
        // Engine skip-path counters: identical across engines by the
        // visited-cycle equivalence argument (see engine.rs module docs),
        // so the differential test may compare them byte-for-byte.
        metrics.set_counter("engine.skipped_cycles", outcome.stats.skipped_cycles);
        metrics.set_counter("engine.blocked_iters", outcome.stats.blocked_iters);
        // Per-core OoO pressure counters (ROADMAP telemetry item). Both are
        // exact under fast-forward replay (see `Core::fast_forward`), so the
        // engine-differential comparison covers them byte-for-byte.
        for c in &cores {
            metrics
                .set_counter(&format!("cpu.core{}.rob_occupancy_cum", c.id()), c.rob_occupancy_cum);
            metrics.set_counter(
                &format!("cpu.core{}.issue_stall_cycles", c.id()),
                c.issue_stall_cycles,
            );
            metrics.set_counter(&format!("cpu.core{}.retire_stall_cycles", c.id()), c.stall_cycles);
        }
        // Prefill/run wall time and checkpoint behaviour. Wall times are
        // host-dependent and the checkpoint counters are process-cumulative;
        // everything under `server.prefill.` / `server.checkpoint.` is
        // excluded from the engine-differential comparison for that reason.
        let ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        metrics.set_counter("server.prefill.wall_ns", ns(dbg_prefill));
        metrics.set_counter(
            "server.prefill.loop_wall_ns",
            ns(dbg_t0.elapsed().saturating_sub(dbg_prefill)),
        );
        metrics.set_counter("server.prefill.restored", u64::from(restored));
        checkpoint_metrics(&mut metrics);
        (report, hierarchy.into_telemetry(), metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_cache::CalmPolicy;
    use coaxial_telemetry::MetricValue;

    fn quick(config: SystemConfig, wl: &str) -> RunReport {
        let w = Workload::by_name(wl).expect("workload exists");
        Simulation::new(config, w).instructions_per_core(4_000).warmup(1_000).run()
    }

    #[test]
    fn baseline_run_produces_sane_report() {
        let r = quick(SystemConfig::ddr_baseline(), "stream-copy");
        assert!(r.ipc > 0.01 && r.ipc < 4.0, "ipc = {}", r.ipc);
        assert!(r.mpki > 1.0, "stream must miss: mpki = {}", r.mpki);
        assert!(r.utilization > 0.05, "utilization = {}", r.utilization);
        assert!(r.read_gbs > 0.0 && r.write_gbs > 0.0);
        let (on, q, s, cxl) = r.breakdown_ns;
        assert!(on >= 0.0 && q >= 0.0 && s > 0.0);
        assert_eq!(cxl, 0.0, "no CXL component on the DDR baseline");
    }

    #[test]
    fn coaxial_reports_cxl_latency_component() {
        let r = quick(SystemConfig::coaxial_4x(), "stream-copy");
        let (_, _, _, cxl) = r.breakdown_ns;
        assert!(cxl > 30.0, "CXL component should be ≈50 ns, got {cxl}");
    }

    #[test]
    fn bandwidth_bound_workload_gains_on_coaxial() {
        let base = quick(SystemConfig::ddr_baseline(), "stream-copy");
        let coax = quick(SystemConfig::coaxial_4x(), "stream-copy");
        let speedup = coax.speedup_over(&base);
        assert!(speedup > 1.2, "stream-copy speedup = {speedup:.2}");
    }

    #[test]
    fn utilization_drops_on_coaxial_for_saturating_workload() {
        let base = quick(SystemConfig::ddr_baseline(), "stream-add");
        let coax = quick(SystemConfig::coaxial_4x(), "stream-add");
        assert!(
            coax.utilization < base.utilization,
            "relative utilization must drop: {} vs {}",
            coax.utilization,
            base.utilization
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(SystemConfig::coaxial_4x(), "mcf");
        let b = quick(SystemConfig::coaxial_4x(), "mcf");
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.hier.l2_misses, b.hier.l2_misses);
    }

    #[test]
    fn single_active_core_runs() {
        let cfg = SystemConfig::ddr_baseline().with_active_cores(1);
        let w = Workload::by_name("gcc").unwrap();
        let r = Simulation::new(cfg, w).instructions_per_core(3_000).warmup(500).run();
        assert_eq!(r.per_core_ipc.len(), 1);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn pressure_counters_are_live_in_the_metrics_registry() {
        // The OoO/CXL pressure counters (ROADMAP telemetry item) must
        // actually accumulate on a memory-bound CXL run, not just exist:
        // a full ROB drives occupancy, blocked retirement drives issue
        // stalls, and in-flight CXL requests hold device-buffer credits.
        let w = Workload::by_name("mcf").expect("workload exists");
        let (_, _, m) = Simulation::new(SystemConfig::coaxial_4x(), w)
            .instructions_per_core(4_000)
            .warmup(1_000)
            .run_with_telemetry(NullTelemetry);
        let counter = |path: &str| match m.get(path) {
            Some(MetricValue::Counter(c)) => *c,
            other => panic!("{path}: expected a counter, got {other:?}"),
        };
        assert!(counter("cpu.core0.rob_occupancy_cum") > 0);
        assert!(counter("cpu.core0.issue_stall_cycles") > 0);
        match m.get("cxl.port.credit_occupancy") {
            Some(MetricValue::Gauge(g)) => {
                assert!(*g > 0.0, "credit occupancy gauge = {g}");
            }
            other => panic!("credit_occupancy: expected a gauge, got {other:?}"),
        }
    }

    #[test]
    fn mix_runs_with_heterogeneous_workloads() {
        let mix = coaxial_workloads::mixes::mix(0, 12);
        let cfg = SystemConfig::ddr_baseline();
        let r = Simulation::new_mix(cfg, &mix).instructions_per_core(2_000).warmup(500).run();
        assert_eq!(r.workload_names.len(), 12);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn cycle_skipping_is_bit_identical() {
        // One DDR config and one CXL config, on a latency-bound workload
        // (frequent full-stall spans, so skipping actually engages) and a
        // bandwidth-bound one (skipping rarely engages; must still be exact).
        for (cfg, wl) in [
            (SystemConfig::ddr_baseline(), "mcf"),
            (SystemConfig::coaxial_4x(), "raytrace"),
            (SystemConfig::coaxial_4x(), "stream-copy"),
        ] {
            let run = |skip: bool| {
                let w = Workload::by_name(wl).expect("workload exists");
                Simulation::new(cfg.clone(), w)
                    .instructions_per_core(4_000)
                    .warmup(1_000)
                    .cycle_skip(skip)
                    .run()
            };
            let fast = run(true);
            let slow = run(false);
            assert_eq!(fast.cycles, slow.cycles, "{wl}: cycle count must match");
            assert_eq!(fast.ipc, slow.ipc, "{wl}: IPC must be bit-identical");
            assert_eq!(fast.per_core_ipc, slow.per_core_ipc, "{wl}: per-core IPC");
            assert_eq!(fast.hier.l2_misses, slow.hier.l2_misses, "{wl}: l2 misses");
            assert_eq!(fast.hier.llc_misses, slow.hier.llc_misses, "{wl}: llc misses");
            assert_eq!(fast.ddr.reads, slow.ddr.reads, "{wl}: ddr reads");
            assert_eq!(fast.ddr.writes, slow.ddr.writes, "{wl}: ddr writes");
            assert_eq!(fast.ddr.act, slow.ddr.act, "{wl}: ACT commands");
            assert_eq!(fast.ddr.pre, slow.ddr.pre, "{wl}: PRE commands");
            assert_eq!(fast.ddr.refab, slow.ddr.refab, "{wl}: refreshes");
            assert_eq!(fast.ddr.elapsed_cycles, slow.ddr.elapsed_cycles, "{wl}: window");
            assert_eq!(fast.breakdown_ns, slow.breakdown_ns, "{wl}: breakdown");
            assert_eq!(fast.bandwidth_gbs, slow.bandwidth_gbs, "{wl}: bandwidth");
        }
    }

    #[test]
    fn skip_from_cycle_zero_is_exact_in_both_engines() {
        // Regression test for the skip-probe underflow: with no warmup the
        // very first skip attempt can fire while `now` is still small, and
        // the hierarchy probe's `now - 1` horizon argument used to underflow
        // in debug builds (now saturating, see `engine::run_lockstep`).
        // raytrace is latency-bound, so skip spans appear immediately.
        let run = |kind: EngineKind, skip: bool| {
            let w = Workload::by_name("raytrace").expect("workload exists");
            Simulation::new(SystemConfig::coaxial_4x(), w)
                .instructions_per_core(3_000)
                .warmup(0)
                .cycle_skip(skip)
                .engine(kind)
                .run()
        };
        let oracle = run(EngineKind::Lockstep, false);
        for kind in [EngineKind::Lockstep, EngineKind::Event] {
            let fast = run(kind, true);
            assert_eq!(fast.cycles, oracle.cycles, "{}: cycle count", kind.name());
            assert_eq!(fast.ipc, oracle.ipc, "{}: IPC", kind.name());
            assert_eq!(fast.per_core_ipc, oracle.per_core_ipc, "{}: per-core IPC", kind.name());
            assert_eq!(fast.ddr.reads, oracle.ddr.reads, "{}: ddr reads", kind.name());
            assert_eq!(fast.ddr.writes, oracle.ddr.writes, "{}: ddr writes", kind.name());
            assert_eq!(fast.breakdown_ns, oracle.breakdown_ns, "{}: breakdown", kind.name());
        }
    }

    #[test]
    fn calm_serial_override_disables_calm_traffic() {
        let cfg = SystemConfig::coaxial_4x().with_calm(CalmPolicy::Serial);
        let r = quick(cfg, "bwaves");
        assert_eq!(r.calm.true_pos + r.calm.false_pos, 0, "serial never CALMs");
        assert_eq!(r.hier.wasted_mem_reads, 0);
    }
}
