//! The simulation driver: builds a configured server, runs a workload (or
//! mix) with warmup, and harvests a [`RunReport`].
//!
//! Methodology follows the paper §V: the same workload is deployed on all
//! active cores (or one workload per core for mixes), simulation warms up
//! for a fixed instruction count per core, statistics reset, and the
//! measured window ends when every active core has retired its
//! instruction budget (a core that finishes early keeps executing to
//! maintain memory pressure, but its IPC is frozen at its finish line —
//! ChampSim semantics).

use std::path::PathBuf;

use coaxial_cache::{CalmStats, HierStats, Hierarchy, HierarchyConfig};
use coaxial_cpu::{Core, CoreParams, FileTrace, TraceSource};
use coaxial_cxl::CxlMemory;
use coaxial_dram::{ChannelStats, MemoryBackend, MultiChannel};
use coaxial_sim::Cycle;
use coaxial_workloads::Workload;
use serde::Serialize;

use crate::config::{MemorySystemKind, SystemConfig};

/// Default measured instructions per core. The paper runs 200 M after
/// 50 M of warmup on a cluster; this reproduction defaults to a laptop-
/// scale budget and honours `COAXIAL_INSTR` / `COAXIAL_WARMUP` overrides.
pub const DEFAULT_INSTRUCTIONS: u64 = 120_000;
pub const DEFAULT_WARMUP: u64 = 20_000;

/// Results of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    pub config_name: String,
    pub workload_names: Vec<String>,
    /// Mean per-core IPC over active cores.
    pub ipc: f64,
    pub per_core_ipc: Vec<f64>,
    /// Demand LLC misses per kilo-instruction (aggregate).
    pub mpki: f64,
    /// Mean L2-miss latency components, ns: (on-chip, queue, DRAM, CXL).
    pub breakdown_ns: (f64, f64, f64, f64),
    /// Mean total L2-miss latency, ns.
    pub l2_miss_latency_ns: f64,
    /// Achieved memory bandwidth, GB/s (reads, writes).
    pub read_gbs: f64,
    pub write_gbs: f64,
    /// Bandwidth utilization relative to this system's own DDR peak.
    pub utilization: f64,
    /// Utilization expressed against the *baseline* single channel
    /// (shows absolute traffic growth, Fig. 5 bottom).
    pub bandwidth_gbs: f64,
    pub llc_miss_ratio: f64,
    /// Mean (TX, RX) CXL link utilization (None on the DDR baseline).
    pub cxl_link_utilization: Option<(f64, f64)>,
    pub calm: CalmStats,
    /// Raw hierarchy statistics.
    pub hier: HierStats,
    /// Raw aggregated DDR statistics.
    pub ddr: ChannelStats,
    /// Measured-window length in cycles.
    pub cycles: Cycle,
    /// Per-core retired instructions in the measured window.
    pub instructions: u64,
}

impl RunReport {
    /// Speedup of this run over a baseline run (IPC ratio).
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if baseline.ipc == 0.0 {
            0.0
        } else {
            self.ipc / baseline.ipc
        }
    }
}

/// Builder for one simulation run.
pub struct Simulation {
    config: SystemConfig,
    /// One workload per core (replicated for homogeneous runs).
    workloads: Vec<&'static Workload>,
    /// Replay a captured `.cxtr` trace on every core instead of a
    /// registry workload (see `coaxial_cpu::tracefile`).
    trace_file: Option<PathBuf>,
    instructions: u64,
    warmup: u64,
    max_cycles: Cycle,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

impl Simulation {
    /// Homogeneous run: the same workload on every active core (§V).
    pub fn new(config: SystemConfig, workload: &'static Workload) -> Self {
        let workloads = vec![workload; config.cores];
        Self::with_workloads(config, workloads)
    }

    /// Heterogeneous run (Fig. 6 mixes): one workload per core.
    pub fn new_mix(config: SystemConfig, mix: &[&'static Workload]) -> Self {
        assert_eq!(mix.len(), config.cores, "mix must name one workload per core");
        Self::with_workloads(config, mix.to_vec())
    }

    fn with_workloads(config: SystemConfig, workloads: Vec<&'static Workload>) -> Self {
        let instructions = env_u64("COAXIAL_INSTR").unwrap_or(DEFAULT_INSTRUCTIONS);
        let warmup = env_u64("COAXIAL_WARMUP").unwrap_or(DEFAULT_WARMUP);
        Self { config, workloads, trace_file: None, instructions, warmup, max_cycles: 0 }
    }

    /// Replay a captured trace file on every active core.
    pub fn from_trace_file(config: SystemConfig, path: impl Into<PathBuf>) -> Self {
        let mut s = Self::with_workloads(config, Vec::new());
        s.trace_file = Some(path.into());
        s
    }

    /// Build the trace stream for core `i` (registry workload or file).
    fn trace_for(&self, i: usize, seed: u64) -> Box<dyn TraceSource> {
        match &self.trace_file {
            Some(path) => Box::new(
                FileTrace::open(path)
                    .unwrap_or_else(|e| panic!("cannot open trace {path:?}: {e}")),
            ),
            None => self.workloads[i].trace(i as u32, seed),
        }
    }

    fn workload_names(&self) -> Vec<String> {
        match &self.trace_file {
            Some(path) => vec![path.display().to_string()],
            None => self.workloads.iter().map(|w| w.name.to_string()).collect(),
        }
    }

    /// Measured instructions per core (overrides `COAXIAL_INSTR`).
    pub fn instructions_per_core(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Warmup instructions per core (overrides `COAXIAL_WARMUP`).
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// Hard cycle cap (default: scaled to the instruction budget).
    pub fn max_cycles(mut self, n: Cycle) -> Self {
        self.max_cycles = n;
        self
    }

    /// Run to completion and report.
    pub fn run(self) -> RunReport {
        match &self.config.memory {
            MemorySystemKind::DirectDdr { channels } => {
                let backend = MultiChannel::new(self.config.dram.clone(), *channels);
                self.run_with(backend)
            }
            MemorySystemKind::Cxl { link, channels } => {
                let backend = CxlMemory::new(link.clone(), self.config.dram.clone(), *channels);
                self.run_with(backend)
            }
        }
    }

    fn run_with<B: MemoryBackend>(self, backend: B) -> RunReport {
        let cfg = &self.config;
        let hier_cfg = HierarchyConfig {
            mem_channels: cfg.ddr_channels(),
            seed: cfg.seed ^ 0x11EC,
            calm_epoch: cfg.calm_epoch,
            prefetch: cfg.prefetch,
            ..HierarchyConfig::table_iii(
                cfg.cores,
                cfg.ddr_channels(),
                cfg.llc_mb_per_core,
                cfg.peak_bandwidth_gbs(),
                cfg.calm,
            )
        };
        let mut hierarchy = Hierarchy::new(hier_cfg, backend);

        // Functional cache prefill: stand-in for the paper's 50 M-instruction
        // warmup. Each active core streams its own access pattern through
        // the arrays until the LLC is effectively full (or the working set
        // is exhausted), so the measured window starts at dirty steady
        // state — evictions, and therefore memory write traffic, flow from
        // the first cycle.
        let llc_lines_total =
            (cfg.llc_mb_per_core * 1024.0 * 1024.0 / 64.0) as usize * cfg.cores;
        let mut prefill_traces: Vec<_> =
            (0..cfg.active_cores).map(|i| self.trace_for(i, cfg.seed ^ 0xF111)).collect();
        let round_ops = (llc_lines_total / cfg.active_cores.max(1)).max(4096);
        for _round in 0..8 {
            for (i, t) in prefill_traces.iter_mut().enumerate() {
                for _ in 0..round_ops {
                    let op = t.next_op();
                    hierarchy.prefill_access(
                        i as u32,
                        op.line_addr,
                        op.kind == coaxial_cpu::MemKind::Store,
                    );
                }
            }
            let [_, _, (llc_valid, _)] = hierarchy.occupancy();
            if llc_valid >= llc_lines_total * 9 / 10 {
                break;
            }
        }
        hierarchy.finish_prefill();

        let mut cores: Vec<Core> = (0..cfg.active_cores)
            .map(|i| Core::new(i as u32, CoreParams::default(), self.trace_for(i, cfg.seed)))
            .collect();

        let max_cycles = if self.max_cycles > 0 {
            self.max_cycles
        } else {
            // Generous cap: even at IPC 0.01 the budget fits.
            (self.warmup + self.instructions) * 120
        };

        let mut now: Cycle = 0;
        let mut warm = self.warmup == 0;
        // IPC freeze-point per core.
        let mut finish_ipc: Vec<Option<f64>> = vec![None; cores.len()];

        while now < max_cycles {
            hierarchy.tick(now);
            while let Some((core, id)) = hierarchy.pop_completion() {
                if (core as usize) < cores.len() {
                    cores[core as usize].on_memory_complete(id);
                }
            }
            for core in cores.iter_mut() {
                core.tick(now, &mut hierarchy);
            }
            now += 1;

            if !warm && cores.iter().all(|c| c.retired >= self.warmup) {
                warm = true;
                hierarchy.reset_stats(now);
                for c in cores.iter_mut() {
                    c.reset_stats();
                }
            }
            if warm {
                let mut all_done = true;
                for (i, c) in cores.iter().enumerate() {
                    if finish_ipc[i].is_none() {
                        if c.retired >= self.instructions {
                            finish_ipc[i] = Some(c.ipc());
                        } else {
                            all_done = false;
                        }
                    }
                }
                if all_done {
                    break;
                }
            }
        }

        let per_core_ipc: Vec<f64> = cores
            .iter()
            .enumerate()
            .map(|(i, c)| finish_ipc[i].unwrap_or_else(|| c.ipc()))
            .collect();
        let ipc = per_core_ipc.iter().sum::<f64>() / per_core_ipc.len() as f64;

        let hier = hierarchy.stats();
        let ddr = hierarchy.backend().ddr_stats();
        let total_instr: u64 = cores.iter().map(|c| c.retired.min(self.instructions)).sum();
        let mpki = if total_instr == 0 {
            0.0
        } else {
            hier.llc_misses as f64 * 1000.0 / total_instr as f64
        };
        let breakdown_ns = hier.breakdown_ns();
        let window_ns = ddr.elapsed_cycles as f64 * coaxial_sim::NS_PER_CYCLE;
        let (read_gbs, write_gbs) = if window_ns > 0.0 {
            (ddr.read_bytes as f64 / window_ns, ddr.write_bytes as f64 / window_ns)
        } else {
            (0.0, 0.0)
        };
        let peak = cfg.peak_bandwidth_gbs();
        RunReport {
            config_name: cfg.name.clone(),
            workload_names: self.workload_names(),
            ipc,
            per_core_ipc,
            mpki,
            breakdown_ns,
            l2_miss_latency_ns: hier.mean_l2_miss_latency_cycles() * coaxial_sim::NS_PER_CYCLE,
            read_gbs,
            write_gbs,
            utilization: (read_gbs + write_gbs) / peak,
            bandwidth_gbs: read_gbs + write_gbs,
            llc_miss_ratio: hier.llc_miss_ratio(),
            cxl_link_utilization: hierarchy.backend().link_utilization(),
            calm: hier.calm,
            hier,
            ddr,
            cycles: now,
            instructions: self.instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coaxial_cache::CalmPolicy;

    fn quick(config: SystemConfig, wl: &str) -> RunReport {
        let w = Workload::by_name(wl).expect("workload exists");
        Simulation::new(config, w).instructions_per_core(4_000).warmup(1_000).run()
    }

    #[test]
    fn baseline_run_produces_sane_report() {
        let r = quick(SystemConfig::ddr_baseline(), "stream-copy");
        assert!(r.ipc > 0.01 && r.ipc < 4.0, "ipc = {}", r.ipc);
        assert!(r.mpki > 1.0, "stream must miss: mpki = {}", r.mpki);
        assert!(r.utilization > 0.05, "utilization = {}", r.utilization);
        assert!(r.read_gbs > 0.0 && r.write_gbs > 0.0);
        let (on, q, s, cxl) = r.breakdown_ns;
        assert!(on >= 0.0 && q >= 0.0 && s > 0.0);
        assert_eq!(cxl, 0.0, "no CXL component on the DDR baseline");
    }

    #[test]
    fn coaxial_reports_cxl_latency_component() {
        let r = quick(SystemConfig::coaxial_4x(), "stream-copy");
        let (_, _, _, cxl) = r.breakdown_ns;
        assert!(cxl > 30.0, "CXL component should be ≈50 ns, got {cxl}");
    }

    #[test]
    fn bandwidth_bound_workload_gains_on_coaxial() {
        let base = quick(SystemConfig::ddr_baseline(), "stream-copy");
        let coax = quick(SystemConfig::coaxial_4x(), "stream-copy");
        let speedup = coax.speedup_over(&base);
        assert!(speedup > 1.2, "stream-copy speedup = {speedup:.2}");
    }

    #[test]
    fn utilization_drops_on_coaxial_for_saturating_workload() {
        let base = quick(SystemConfig::ddr_baseline(), "stream-add");
        let coax = quick(SystemConfig::coaxial_4x(), "stream-add");
        assert!(
            coax.utilization < base.utilization,
            "relative utilization must drop: {} vs {}",
            coax.utilization,
            base.utilization
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = quick(SystemConfig::coaxial_4x(), "mcf");
        let b = quick(SystemConfig::coaxial_4x(), "mcf");
        assert_eq!(a.ipc, b.ipc);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.hier.l2_misses, b.hier.l2_misses);
    }

    #[test]
    fn single_active_core_runs() {
        let cfg = SystemConfig::ddr_baseline().with_active_cores(1);
        let w = Workload::by_name("gcc").unwrap();
        let r = Simulation::new(cfg, w).instructions_per_core(3_000).warmup(500).run();
        assert_eq!(r.per_core_ipc.len(), 1);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn mix_runs_with_heterogeneous_workloads() {
        let mix = coaxial_workloads::mixes::mix(0, 12);
        let cfg = SystemConfig::ddr_baseline();
        let r = Simulation::new_mix(cfg, &mix).instructions_per_core(2_000).warmup(500).run();
        assert_eq!(r.workload_names.len(), 12);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn calm_serial_override_disables_calm_traffic() {
        let cfg = SystemConfig::coaxial_4x().with_calm(CalmPolicy::Serial);
        let r = quick(cfg, "bwaves");
        assert_eq!(r.calm.true_pos + r.calm.false_pos, 0, "serial never CALMs");
        assert_eq!(r.hier.wasted_mem_reads, 0);
    }
}
