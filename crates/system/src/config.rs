//! Server configurations (paper Tables II and III).
//!
//! The paper simulates a 12-core slice of its 144-core server: the
//! baseline gets one DDR5-4800 channel (12:1 core:MC ratio); COAXIAL
//! variants replace it with 2–4 CXL-attached channels (8 DDR channels for
//! COAXIAL-asym, two per CXL-asym link). All COAXIAL variants default to
//! CALM_70%.
//!
//! # The functional / timing split
//!
//! [`SystemConfig`] is deliberately two nested halves:
//!
//! * [`FunctionalConfig`] — everything that determines *which* memory
//!   accesses happen and *what state* the machine holds after the
//!   functional prefill: core counts, the workload seed, and cache
//!   geometry. Two configs with equal functional halves produce
//!   byte-identical post-prefill machine state, no matter how their
//!   timing halves differ.
//! * [`TimingConfig`] — everything that only determines *when* things
//!   happen in the timed phase: the memory system (CXL link parameters,
//!   channel counts), CALM policy and epoch, the prefetcher, and DRAM
//!   timings.
//!
//! This split is what makes the content-addressed prefill checkpoint
//! store in `coaxial-system` sound: checkpoints are keyed by a canonical
//! hash of the functional slice only, so a latency sweep over 36 timing
//! variants reuses one warmed snapshot. Lint E03 (`coaxial-lint`)
//! enforces the invariant structurally: code reachable from the prefill
//! call graph must not read timing-half fields.

use coaxial_cache::{CalmPolicy, PrefetchPolicy};
use coaxial_cxl::CxlLinkConfig;
use coaxial_dram::DramConfig;
use serde::Serialize;

/// A structurally invalid configuration request.
///
/// The `try_with_*` builders (and [`SystemConfig::by_name`]) return this
/// instead of panicking so service front-ends (the gateway's HTTP 400
/// mapping) and the CLI can report the same message without killing a
/// worker thread. The panicking `with_*` builders delegate to these and
/// keep their assert semantics for experiment code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// No canned configuration under that name (see [`SystemConfig::by_name`]).
    UnknownConfig(String),
    /// `cores == 0`.
    InvalidCores { n: usize },
    /// `active_cores` outside `1..=cores`.
    InvalidActiveCores { n: usize, cores: usize },
    /// `calm_epoch == 0`.
    InvalidCalmEpoch,
    /// A workload mix that does not name exactly one workload per core.
    WorkloadMixLength { got: usize, want: usize },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownConfig(name) => {
                write!(f, "unknown config `{name}`: expected ddr|baseline|2x|4x|5x|asym")
            }
            Self::InvalidCores { n } => {
                write!(f, "invalid core count {n}: a server needs at least one core")
            }
            Self::InvalidActiveCores { n, cores } => {
                write!(f, "invalid active core count {n}: must be in 1..={cores}")
            }
            Self::InvalidCalmEpoch => write!(f, "calm epoch must be at least one cycle"),
            Self::WorkloadMixLength { got, want } => {
                write!(f, "workload mix names {got} workloads for {want} cores")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// What kind of memory system backs the processor.
#[derive(Debug, Clone, Serialize)]
pub enum MemorySystemKind {
    /// Directly attached DDR channels (the baseline).
    DirectDdr { channels: usize },
    /// CXL-attached Type-3 devices.
    Cxl { link: CxlLinkConfig, channels: usize },
}

/// The functional half of a configuration: determines the post-prefill
/// machine state (and nothing about cycle timing). See the module docs.
#[derive(Debug, Clone, Serialize)]
pub struct FunctionalConfig {
    /// Cores on the simulated slice (Table III: 12).
    pub cores: usize,
    /// Cores actually running a workload (Fig. 11 sensitivity).
    pub active_cores: usize,
    /// LLC capacity per core in MB (Table II: 2 MB baseline, 1 MB for
    /// COAXIAL-4x/asym). Geometry, not timing: it fixes which lines
    /// survive the prefill.
    pub llc_mb_per_core: f64,
    /// RNG seed for workload generation and CALM_R decisions.
    pub seed: u64,
}

/// The timing half of a configuration: determines *when* accesses
/// complete, never *which* accesses happen. See the module docs.
#[derive(Debug, Clone, Serialize)]
pub struct TimingConfig {
    pub memory: MemorySystemKind,
    pub calm: CalmPolicy,
    /// CALM_R monitoring epoch in cycles (ablation knob).
    pub calm_epoch: u64,
    /// Optional L2 prefetcher (extension; the paper runs without one).
    pub prefetch: PrefetchPolicy,
    pub dram: DramConfig,
}

/// A complete simulated server configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SystemConfig {
    /// Human-readable configuration name (used in reports).
    pub name: String,
    /// The half that shapes machine state (prefill checkpoint key).
    pub functional: FunctionalConfig,
    /// The half that shapes cycle timing only.
    pub timing: TimingConfig,
}

impl SystemConfig {
    fn base(name: &str, memory: MemorySystemKind, llc_mb: f64, calm: CalmPolicy) -> Self {
        Self {
            name: name.to_string(),
            functional: FunctionalConfig {
                cores: 12,
                active_cores: 12,
                llc_mb_per_core: llc_mb,
                seed: 0xC0A51A1,
            },
            timing: TimingConfig {
                memory,
                calm,
                calm_epoch: coaxial_cache::calm::CALM_EPOCH,
                prefetch: PrefetchPolicy::None,
                dram: DramConfig::ddr5_4800(),
            },
        }
    }

    /// DDR-based baseline: 12 cores, 1 DDR5-4800 channel, 2 MB LLC/core,
    /// serial LLC/memory access.
    pub fn ddr_baseline() -> Self {
        Self::base(
            "DDR-baseline",
            MemorySystemKind::DirectDdr { channels: 1 },
            2.0,
            CalmPolicy::Serial,
        )
    }

    /// COAXIAL-2x: 2 CXL channels, LLC unchanged (iso-LLC point).
    pub fn coaxial_2x() -> Self {
        Self::base(
            "COAXIAL-2x",
            MemorySystemKind::Cxl { link: CxlLinkConfig::x8_symmetric(), channels: 2 },
            2.0,
            CalmPolicy::CalmR { r: 0.7 },
        )
    }

    /// COAXIAL-4x (the paper's default "COAXIAL"): 4 CXL channels, LLC
    /// halved to 1 MB/core (iso-area point), CALM_70%.
    pub fn coaxial_4x() -> Self {
        Self::base(
            "COAXIAL-4x",
            MemorySystemKind::Cxl { link: CxlLinkConfig::x8_symmetric(), channels: 4 },
            1.0,
            CalmPolicy::CalmR { r: 0.7 },
        )
    }

    /// COAXIAL-5x: iso-pin point (5 CXL channels per DDR channel) — 17%
    /// larger die (Table II); evaluated for completeness.
    pub fn coaxial_5x() -> Self {
        Self::base(
            "COAXIAL-5x",
            MemorySystemKind::Cxl { link: CxlLinkConfig::x8_symmetric(), channels: 5 },
            1.0,
            CalmPolicy::CalmR { r: 0.7 },
        )
    }

    /// COAXIAL-asym: 4 asymmetric-lane CXL channels, each fronting two DDR
    /// channels (8 total), LLC 1 MB/core.
    pub fn coaxial_asym() -> Self {
        Self::base(
            "COAXIAL-asym",
            MemorySystemKind::Cxl { link: CxlLinkConfig::x8_asymmetric(), channels: 4 },
            1.0,
            CalmPolicy::CalmR { r: 0.7 },
        )
    }

    /// Look up a canned configuration by its CLI/service name.
    ///
    /// Accepts the short names used by the `coaxial` binary and the
    /// gateway request schema: `ddr`/`baseline`, `2x`, `4x`, `5x`,
    /// `asym`. Unknown names are a [`ConfigError::UnknownConfig`] so the
    /// gateway can answer HTTP 400 and the CLI can print the same text.
    pub fn by_name(name: &str) -> Result<Self, ConfigError> {
        match name {
            "ddr" | "baseline" => Ok(Self::ddr_baseline()),
            "2x" => Ok(Self::coaxial_2x()),
            "4x" => Ok(Self::coaxial_4x()),
            "5x" => Ok(Self::coaxial_5x()),
            "asym" => Ok(Self::coaxial_asym()),
            other => Err(ConfigError::UnknownConfig(other.to_string())),
        }
    }

    /// Override the CALM mechanism (Fig. 7).
    pub fn with_calm(mut self, calm: CalmPolicy) -> Self {
        self.timing.calm = calm;
        let suffix = calm.label();
        self.name = format!("{}+{}", self.name, suffix);
        self
    }

    /// Override the CXL unloaded latency budget in ns (Fig. 10; §VII's
    /// 10 ns OMI-like projection). No effect on DDR configurations.
    pub fn with_cxl_latency_ns(mut self, total_ns: f64) -> Self {
        if let MemorySystemKind::Cxl { link, .. } = &mut self.timing.memory {
            *link = link.clone().with_total_port_latency_ns(total_ns);
            self.name = format!("{} ({total_ns:.0}ns CXL)", self.name);
        }
        self
    }

    /// Resize the simulated slice to `n` cores, all active (scaling
    /// studies beyond the paper's fixed 12-core slice; the mesh and LLC
    /// banking rebuild around the new count). Use [`Self::with_active_cores`]
    /// to idle cores without shrinking the slice.
    pub fn with_cores(self, n: usize) -> Self {
        match self.try_with_cores(n) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`Self::with_cores`] for service front-ends.
    pub fn try_with_cores(mut self, n: usize) -> Result<Self, ConfigError> {
        if n < 1 {
            return Err(ConfigError::InvalidCores { n });
        }
        self.functional.cores = n;
        self.functional.active_cores = n;
        Ok(self)
    }

    /// Run the workload on only the first `n` cores (Fig. 11).
    pub fn with_active_cores(self, n: usize) -> Self {
        match self.try_with_active_cores(n) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`Self::with_active_cores`] for service front-ends.
    pub fn try_with_active_cores(mut self, n: usize) -> Result<Self, ConfigError> {
        if n < 1 || n > self.functional.cores {
            return Err(ConfigError::InvalidActiveCores { n, cores: self.functional.cores });
        }
        self.functional.active_cores = n;
        Ok(self)
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.functional.seed = seed;
        self
    }

    /// Enable an L2 prefetcher (extension experiments).
    pub fn with_prefetch(mut self, prefetch: PrefetchPolicy) -> Self {
        self.timing.prefetch = prefetch;
        if prefetch != PrefetchPolicy::None {
            self.name = format!("{}+pf({})", self.name, prefetch.label());
        }
        self
    }

    /// Override the CALM_R monitoring epoch (ablation experiments).
    pub fn with_calm_epoch(self, cycles: u64) -> Self {
        match self.try_with_calm_epoch(cycles) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`Self::with_calm_epoch`] for service front-ends.
    pub fn try_with_calm_epoch(mut self, cycles: u64) -> Result<Self, ConfigError> {
        if cycles == 0 {
            return Err(ConfigError::InvalidCalmEpoch);
        }
        self.timing.calm_epoch = cycles;
        Ok(self)
    }

    /// Override the DRAM configuration (ablation experiments: page policy,
    /// scheduler window, queue depths).
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.timing.dram = dram;
        self
    }

    /// Number of DDR channels behind the memory system.
    pub fn ddr_channels(&self) -> usize {
        match &self.timing.memory {
            MemorySystemKind::DirectDdr { channels } => *channels,
            MemorySystemKind::Cxl { link, channels } => channels * link.ddr_channels_per_device,
        }
    }

    /// Aggregate peak DDR bandwidth, GB/s.
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        self.timing.dram.peak_bandwidth_gbs() * self.ddr_channels() as f64
    }

    /// Relative memory bandwidth vs. the 1-channel baseline.
    pub fn relative_bandwidth(&self) -> f64 {
        self.ddr_channels() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_channel_counts() {
        assert_eq!(SystemConfig::ddr_baseline().ddr_channels(), 1);
        assert_eq!(SystemConfig::coaxial_2x().ddr_channels(), 2);
        assert_eq!(SystemConfig::coaxial_4x().ddr_channels(), 4);
        assert_eq!(SystemConfig::coaxial_5x().ddr_channels(), 5);
        assert_eq!(SystemConfig::coaxial_asym().ddr_channels(), 8);
    }

    #[test]
    fn table_ii_llc_capacities() {
        assert_eq!(SystemConfig::ddr_baseline().functional.llc_mb_per_core, 2.0);
        assert_eq!(SystemConfig::coaxial_2x().functional.llc_mb_per_core, 2.0);
        assert_eq!(SystemConfig::coaxial_4x().functional.llc_mb_per_core, 1.0);
        assert_eq!(SystemConfig::coaxial_asym().functional.llc_mb_per_core, 1.0);
    }

    #[test]
    fn coaxial_defaults_to_calm_70() {
        match SystemConfig::coaxial_4x().timing.calm {
            CalmPolicy::CalmR { r } => assert!((r - 0.7).abs() < 1e-9),
            other => panic!("default CALM must be CALM_70%, got {other:?}"),
        }
        assert_eq!(SystemConfig::ddr_baseline().timing.calm, CalmPolicy::Serial);
    }

    #[test]
    fn relative_bandwidth_matches_names() {
        assert_eq!(SystemConfig::coaxial_4x().relative_bandwidth(), 4.0);
        let base = SystemConfig::ddr_baseline().peak_bandwidth_gbs();
        assert!((base - 38.4).abs() < 0.1);
        assert!((SystemConfig::coaxial_4x().peak_bandwidth_gbs() - 4.0 * base).abs() < 0.5);
    }

    #[test]
    fn latency_override_only_touches_cxl() {
        let ddr = SystemConfig::ddr_baseline().with_cxl_latency_ns(70.0);
        assert_eq!(ddr.name, "DDR-baseline");
        let coax = SystemConfig::coaxial_4x().with_cxl_latency_ns(70.0);
        assert!(coax.name.contains("70ns"));
    }

    #[test]
    fn timing_overrides_leave_the_functional_half_untouched() {
        // The checkpoint key depends only on the functional half; a full
        // timing sweep must therefore share one serialized functional slice.
        let base = SystemConfig::coaxial_4x();
        let swept = SystemConfig::coaxial_4x()
            .with_cxl_latency_ns(70.0)
            .with_calm(CalmPolicy::MapI)
            .with_calm_epoch(5_000)
            .with_prefetch(PrefetchPolicy::NextLine { degree: 2 })
            .with_dram(DramConfig::ddr5_4800());
        let a = format!("{:?}", base.functional);
        let b = format!("{:?}", swept.functional);
        assert_eq!(a, b, "timing builders must not leak into FunctionalConfig");
    }

    #[test]
    #[should_panic]
    fn active_cores_bounded() {
        let _ = SystemConfig::ddr_baseline().with_active_cores(13);
    }

    #[test]
    fn try_builders_return_structured_errors() {
        assert_eq!(
            SystemConfig::ddr_baseline().try_with_cores(0).unwrap_err(),
            ConfigError::InvalidCores { n: 0 }
        );
        assert_eq!(
            SystemConfig::ddr_baseline().try_with_active_cores(13).unwrap_err(),
            ConfigError::InvalidActiveCores { n: 13, cores: 12 }
        );
        assert_eq!(
            SystemConfig::ddr_baseline().try_with_calm_epoch(0).unwrap_err(),
            ConfigError::InvalidCalmEpoch
        );
        assert_eq!(SystemConfig::ddr_baseline().try_with_cores(4).unwrap().functional.cores, 4);
    }

    #[test]
    fn by_name_resolves_every_canned_config_and_rejects_unknowns() {
        for (name, channels) in
            [("ddr", 1), ("baseline", 1), ("2x", 2), ("4x", 4), ("5x", 5), ("asym", 8)]
        {
            assert_eq!(SystemConfig::by_name(name).unwrap().ddr_channels(), channels, "{name}");
        }
        let err = SystemConfig::by_name("8x").unwrap_err();
        assert_eq!(err, ConfigError::UnknownConfig("8x".to_string()));
        assert!(err.to_string().contains("8x"), "{err}");
    }
}
