//! Full-system assembly of the COAXIAL reproduction.
//!
//! This crate is the paper's primary artifact: it wires the substrate
//! crates (cores, caches, NoC, DDR, CXL) into the server configurations of
//! Table II / Table III, runs them against the 36 workloads, and exposes a
//! runner for **every table and figure** of the paper's evaluation:
//!
//! | Paper element | Entry point |
//! |---|---|
//! | Fig. 1 (bandwidth/pin)        | [`pinout::bandwidth_per_pin_table`] |
//! | Fig. 2a (load-latency)        | [`experiments::fig2a_load_latency`] |
//! | Fig. 2b (baseline breakdown)  | [`experiments::baseline_characterization`] |
//! | Tables I & II (area)          | [`area`] |
//! | Table III (parameters)        | [`config::SystemConfig`] |
//! | Table IV (workloads)          | [`experiments::baseline_characterization`] |
//! | Fig. 5 (main results)         | [`experiments::fig5_main`] |
//! | Fig. 6 (mixes)                | [`experiments::fig6_mixes`] |
//! | Fig. 7 (CALM sensitivity)     | [`experiments::fig7_calm`] |
//! | Fig. 8 (COAXIAL variants)     | [`experiments::fig8_variants`] |
//! | Fig. 9 (R/W bandwidth)        | [`experiments::baseline_characterization`] |
//! | Fig. 10 (CXL latency)         | [`experiments::fig10_latency_sensitivity`] |
//! | Fig. 11 (core utilization)    | [`experiments::fig11_core_utilization`] |
//! | Table V (power/EDP)           | [`power::table5`] |
//! | §IV-E (capacity & cost)       | [`cost`] |

// No unsafe anywhere in this crate (lint U01 audit); keep it that way.
#![forbid(unsafe_code)]

pub mod area;
pub mod config;
pub mod cost;
pub mod engine;
pub mod experiments;
pub mod pinout;
pub mod power;
pub mod runner;
pub mod sampling;
pub mod server;

pub use config::{ConfigError, MemorySystemKind, SystemConfig};
pub use engine::EngineKind;
pub use runner::{parallel_map, run_all, RunSpec};
pub use sampling::{SampledReport, SamplingConfig, SamplingSummary};
pub use server::{RunReport, Simulation};
