//! SMARTS-style interval sampling: ~100× simulated horizon at similar wall
//! cost.
//!
//! A full-detail run simulates every instruction on the timing model, which
//! caps practical horizons around `Budget::quick` (thousands of
//! instructions per core) — two orders of magnitude short of the paper's
//! 200 M-instruction windows. Systematic sampling (Wunderlich et al.,
//! ISCA '03; the same shortcut CXL-DMSim takes) closes the gap by
//! alternating two execution modes over one continuous workload stream:
//!
//! 1. **Fast-forward** — the per-core trace generators advance
//!    functionally through [`coaxial_cpu::functional_advance`], streaming
//!    every access through [`Hierarchy::prefill_access`]. Cache contents
//!    (the slow-to-warm state) stay architecturally exact; no timing model
//!    ticks, so this span costs host time proportional to accesses, not
//!    simulated cycles.
//! 2. **Detailed interval** — the hierarchy is rebuilt around the warmed
//!    arrays with fresh timing state ([`Hierarchy::into_interval`]), cores
//!    are reconstructed around the same generators, and the ordinary
//!    event-driven (or lockstep-oracle) engine runs a short detailed
//!    warm-up — re-warming MSHRs, queues, and DRAM row state the
//!    fast-forward cannot maintain — followed by the measured span.
//!
//! Each interval contributes one IPC observation; the run reports their
//! mean ± 95 % Student-t confidence interval
//! ([`coaxial_sim::SampleSeries`]) and can stop early once the relative
//! half-width reaches `COAXIAL_SAMPLING_CI`. Counter-style statistics
//! (misses, bytes, latency ledgers, histograms) aggregate across intervals
//! so the usual [`RunReport`] fields stay meaningful.
//!
//! Determinism: everything — generator streams, fast-forward spans,
//! interval boundaries, early stopping — is a pure function of the config
//! seed and the `COAXIAL_SAMPLING*` knobs, so the same seed yields
//! byte-identical sampled reports on either engine (the differential suite
//! in `tests/sampling_differential.rs` pins both properties). Pipeline
//! state in flight at an interval boundary (ROB contents, a partially
//! dispatched op) is deliberately discarded, exactly like SMARTS: the next
//! interval's detailed warm-up absorbs the transient, and discarding is
//! deterministic.
//!
//! Sampled and full-detail reports are different estimators of the same
//! workload, so sampling is an explicit opt-in (`COAXIAL_SAMPLING`, the
//! `--sampled` CLI flag, or these APIs) — `Simulation::run` never reroutes
//! on its own, which keeps result caches keyed by config from serving one
//! mode's numbers to the other.
//!
//! # Cold-start bias and the warm-up knob
//!
//! The timing-state reset at each interval boundary is paid back through
//! the detailed warm-up, and *how much* warm-up matters: queue backlog on
//! bandwidth-saturated geometries converges slowly, so short warm-ups
//! measure an optimistic transient. Calibration against full-detail runs
//! over the 36-workload registry: 500 warm + 1000 measured instructions
//! per interval leaves ~+17 % mean IPC bias, 2000+2000 ~+3 %, 5000+5000
//! ~+0.1 % (the differential suite holds the latter shape inside the
//! reported CI plus a 6 % floor). The default shape follows that
//! calibration; shrink `COAXIAL_SAMPLING_WARM`/`_MEASURE` only when a
//! fast biased estimate is acceptable.

use coaxial_cache::hierarchy::trace_pid;
use coaxial_cache::{HierStats, Hierarchy, HierarchyConfig};
use coaxial_cpu::{functional_advance, Core, CoreParams, TraceSource};
use coaxial_cxl::CxlMemory;
use coaxial_dram::{ChannelStats, MemoryBackend, MultiChannel};
use coaxial_sim::{Cycle, SampleSeries};
use coaxial_telemetry::{MetricsRegistry, NullTelemetry, TelemetrySink, TraceEvent};
use serde::Serialize;

use crate::config::MemorySystemKind;
use crate::engine::{self, EngineKind, RunParams};
use crate::server::{checkpoint_metrics, RunReport, Simulation};

/// Shape of one sampled run: how many intervals, and how the per-core
/// instruction stride splits into fast-forward / detailed warm-up /
/// measurement. All fields come from `COAXIAL_SAMPLING*` by default.
#[derive(Debug, Clone, Serialize)]
pub struct SamplingConfig {
    /// Planned measurement intervals (≥1). CI-based early stopping may run
    /// fewer; see `ci_target`.
    pub intervals: u64,
    /// Measured instructions per core inside each interval (≥1).
    pub measure: u64,
    /// Detailed warm-up instructions per core before each measurement.
    pub warm: u64,
    /// Relative CI half-width target for early stopping; 0 disables.
    pub ci_target: f64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        // warm == measure: the bias calibration in the module docs — a
        // skimpier warm-up measures the post-reset optimistic transient.
        Self { intervals: 10, measure: 2_000, warm: 2_000, ci_target: 0.0 }
    }
}

impl SamplingConfig {
    /// Read the `COAXIAL_SAMPLING_*` knobs, falling back to the defaults.
    pub fn from_env() -> Self {
        let d = Self::default();
        Self {
            intervals: coaxial_sim::env::sampling_intervals(d.intervals),
            measure: coaxial_sim::env::sampling_measure(d.measure),
            warm: coaxial_sim::env::sampling_warm(d.warm),
            ci_target: coaxial_sim::env::sampling_ci_target(),
        }
    }

    /// Detailed instructions per core per interval (warm-up + measured).
    pub fn detail_per_interval(&self) -> u64 {
        self.warm + self.measure
    }
}

/// Sampling-specific half of a [`SampledReport`].
#[derive(Debug, Clone, Serialize)]
pub struct SamplingSummary {
    pub intervals_planned: u64,
    pub intervals_run: u64,
    /// Whether the CI target ended the run before `intervals_planned`.
    pub early_stopped: bool,
    pub warm_per_interval: u64,
    pub measure_per_interval: u64,
    /// Requested per-core horizon (the `Simulation` instruction budget).
    pub horizon_instructions: u64,
    /// Instructions executed on the timing model (warm + measure), summed
    /// over cores and the intervals actually run.
    pub detail_instructions: u64,
    /// Instructions advanced functionally, summed over cores and intervals.
    /// Same units as `detail_instructions`, so the two split the covered
    /// horizon between them.
    pub fast_forward_instructions: u64,
    /// The early-stopping target this run was configured with (0 = off).
    pub ci_target: f64,
    /// Mean per-interval IPC — identical to the report's `ipc` field.
    pub ipc_mean: f64,
    /// 95 % Student-t confidence-interval half-width on `ipc_mean`.
    pub ipc_ci_half: f64,
    /// The raw per-interval IPC observations, in execution order.
    pub ipc_samples: Vec<f64>,
}

/// A [`RunReport`] whose statistics were estimated by interval sampling,
/// plus the sampling metadata needed to interpret it.
#[derive(Debug, Clone, Serialize)]
pub struct SampledReport {
    pub report: RunReport,
    pub sampling: SamplingSummary,
}

impl Simulation {
    /// Run in interval-sampling mode and report. The simulation's
    /// instruction budget is the total per-core *horizon*; `scfg` controls
    /// how that horizon splits into fast-forward and detailed spans. The
    /// builder's warm-up budget is ignored — per-interval detailed warm-up
    /// (`scfg.warm`) replaces it, and the functional prefill still runs
    /// once up front.
    pub fn run_sampled(self, scfg: &SamplingConfig) -> SampledReport {
        self.run_sampled_with_telemetry(scfg, NullTelemetry).0
    }

    /// [`Simulation::run_sampled`] with a telemetry sink attached. Each
    /// measurement interval additionally emits one `sampling`-lane span
    /// (`trace_pid::SAMPLING`, `tid` = interval index) so Perfetto shows
    /// the measured windows on the stitched cycle axis.
    pub fn run_sampled_with_telemetry<T: TelemetrySink>(
        self,
        scfg: &SamplingConfig,
        tel: T,
    ) -> (SampledReport, T, MetricsRegistry) {
        match self.config.timing.memory.clone() {
            MemorySystemKind::DirectDdr { channels } => {
                let dram = self.config.timing.dram.clone();
                drive(&self, scfg, tel, &mut || MultiChannel::new(&dram, channels))
            }
            MemorySystemKind::Cxl { link, channels } => {
                let dram = self.config.timing.dram.clone();
                drive(&self, scfg, tel, &mut || CxlMemory::new(&link, &dram, channels))
            }
        }
    }
}

/// Fold one interval's hierarchy counters into the running aggregate.
/// Counter fields sum; the latency histogram merges; the harvest-time hit
/// ratios are handled by the caller (equal-weight interval means, since
/// every interval measures the same instruction budget).
fn fold_hier(agg: &mut HierStats, s: &HierStats) {
    agg.l2_misses += s.l2_misses;
    agg.llc_hits += s.llc_hits;
    agg.llc_misses += s.llc_misses;
    agg.mem_reads += s.mem_reads;
    agg.mem_writes += s.mem_writes;
    agg.wasted_mem_reads += s.wasted_mem_reads;
    agg.onchip_cycles += s.onchip_cycles;
    agg.queue_cycles += s.queue_cycles;
    agg.service_cycles += s.service_cycles;
    agg.cxl_cycles += s.cxl_cycles;
    agg.l2_miss_latency.merge(&s.l2_miss_latency);
    agg.calm.true_pos += s.calm.true_pos;
    agg.calm.true_neg += s.calm.true_neg;
    agg.calm.false_pos += s.calm.false_pos;
    agg.calm.false_neg += s.calm.false_neg;
    agg.prefetch.issued += s.prefetch.issued;
    agg.prefetch.useful += s.prefetch.useful;
    agg.prefetch.redundant += s.prefetch.redundant;
    agg.prefetch.throttled += s.prefetch.throttled;
}

/// Fold one interval's aggregated DDR stats into the running cross-interval
/// aggregate. Unlike [`ChannelStats::merge`] — which combines concurrent
/// channels over one shared window (elapsed = max, utilization averaged) —
/// intervals are disjoint windows: elapsed cycles sum, and the means /
/// utilization weight by each interval's traffic / window length.
fn fold_ddr(agg: &mut ChannelStats, s: &ChannelStats) {
    let total_a = (agg.reads + agg.writes) as f64;
    let total_b = (s.reads + s.writes) as f64;
    if total_a + total_b > 0.0 {
        agg.mean_queue_cycles =
            (agg.mean_queue_cycles * total_a + s.mean_queue_cycles * total_b) / (total_a + total_b);
        agg.mean_service_cycles = (agg.mean_service_cycles * total_a
            + s.mean_service_cycles * total_b)
            / (total_a + total_b);
    }
    let win_a = agg.elapsed_cycles as f64;
    let win_b = s.elapsed_cycles as f64;
    if win_a + win_b > 0.0 {
        agg.bus_utilization =
            (agg.bus_utilization * win_a + s.bus_utilization * win_b) / (win_a + win_b);
    }
    agg.reads += s.reads;
    agg.writes += s.writes;
    agg.read_bytes += s.read_bytes;
    agg.write_bytes += s.write_bytes;
    agg.row_hits += s.row_hits;
    agg.row_misses += s.row_misses;
    agg.row_conflicts += s.row_conflicts;
    agg.act += s.act;
    agg.pre += s.pre;
    agg.rd_cas += s.rd_cas;
    agg.wr_cas += s.wr_cas;
    agg.refab += s.refab;
    agg.elapsed_cycles += s.elapsed_cycles;
}

/// The sampling state machine. One functional prefill, then per interval:
/// rebuild timing state → fast-forward → detailed warm-up → measure →
/// harvest → park the generators for the next span.
fn drive<B: MemoryBackend, T: TelemetrySink>(
    sim: &Simulation,
    scfg: &SamplingConfig,
    tel: T,
    make_backend: &mut dyn FnMut() -> B,
) -> (SampledReport, T, MetricsRegistry) {
    let cfg = &sim.config;
    let func = &cfg.functional;
    let hier_cfg = HierarchyConfig {
        mem_channels: cfg.ddr_channels(),
        seed: func.seed ^ 0x11EC,
        calm_epoch: cfg.timing.calm_epoch,
        prefetch: cfg.timing.prefetch,
        ..HierarchyConfig::table_iii(
            func.cores,
            cfg.ddr_channels(),
            func.llc_mb_per_core,
            cfg.peak_bandwidth_gbs(),
            cfg.timing.calm,
        )
    };
    let mut hierarchy = Hierarchy::with_telemetry(hier_cfg, make_backend(), tel);
    // One functional prefill up front, exactly like a full-detail run
    // (checkpoint store and all). `finish_prefill` is deferred: the first
    // interval's fast-forward continues the same functional stream, and one
    // finish before the first detailed span covers both.
    let restored = sim.prefill_hierarchy(&mut hierarchy);

    // The builder's instruction budget is the total per-core horizon. Each
    // interval owns one stride of it: fast-forward across the gap, then run
    // warm + measure in detail. A stride shorter than the detail span
    // degenerates to back-to-back detailed intervals (ff = 0).
    let horizon = sim.instructions;
    let detail = scfg.detail_per_interval();
    let stride = (horizon / scfg.intervals).max(1);
    let ff_per_interval = stride.saturating_sub(detail);

    let ncores = func.active_cores;
    let mut gens: Vec<Box<dyn TraceSource>> =
        (0..ncores).map(|i| -> Box<dyn TraceSource> { sim.trace_for(i, func.seed) }).collect();

    let skip = sim.cycle_skip.unwrap_or_else(coaxial_sim::env::cycle_skip);
    let kind = sim.engine.unwrap_or_else(EngineKind::from_env);

    let mut series = SampleSeries::new();
    let mut per_core_sum = vec![0.0f64; ncores];
    let mut agg_hier = HierStats::default();
    let mut l1_ratio_sum = 0.0f64;
    let mut l2_ratio_sum = 0.0f64;
    let mut agg_ddr = ChannelStats::default();
    let mut link_util_sum: Option<(f64, f64)> = None;
    let mut link_weight = 0.0f64;
    let mut cycles_total: Cycle = 0;
    let mut total_instr = 0u64;
    let mut ff_instructions = 0u64;
    let mut skipped_cycles = 0u64;
    let mut blocked_iters = 0u64;
    let mut intervals_run = 0u64;
    let mut early_stopped = false;

    for j in 0..scfg.intervals {
        if j > 0 {
            // Keep the warmed arrays, restart every piece of timing state
            // at cycle 0 on a fresh backend.
            hierarchy = hierarchy.into_interval(make_backend());
        }
        for (i, g) in gens.iter_mut().enumerate() {
            ff_instructions += functional_advance(g.as_mut(), ff_per_interval, |line, is_store| {
                hierarchy.prefill_access(coaxial_sim::small_u32(i), line, is_store);
            });
        }
        hierarchy.finish_prefill();

        let mut cores: Vec<Core> = gens
            .drain(..)
            .enumerate()
            .map(|(i, g)| Core::new(coaxial_sim::small_u32(i), CoreParams::default(), g))
            .collect();
        let params = RunParams {
            warmup: scfg.warm,
            instructions: scfg.measure,
            // Same generous slack as the full-detail driver.
            max_cycles: detail * 120,
            skip,
        };
        let outcome = match kind {
            EngineKind::Event => engine::run_event(&params, &mut cores, &mut hierarchy),
            EngineKind::Lockstep => engine::run_lockstep(&params, &mut cores, &mut hierarchy),
        };

        let per_core: Vec<f64> = cores
            .iter()
            .enumerate()
            .map(|(i, c)| outcome.finish_ipc[i].unwrap_or_else(|| c.ipc()))
            .collect();
        for (sum, v) in per_core_sum.iter_mut().zip(&per_core) {
            *sum += v;
        }
        series.push(per_core.iter().sum::<f64>() / per_core.len() as f64);

        let hs = hierarchy.stats();
        l1_ratio_sum += hs.l1_hit_ratio;
        l2_ratio_sum += hs.l2_hit_ratio;
        fold_hier(&mut agg_hier, &hs);
        fold_ddr(&mut agg_ddr, &hierarchy.backend().ddr_stats());
        if let Some((tx, rx)) = hierarchy.backend().link_utilization() {
            let w = outcome.now as f64;
            let (a, b) = link_util_sum.unwrap_or((0.0, 0.0));
            link_util_sum = Some((a + tx * w, b + rx * w));
            link_weight += w;
        }
        total_instr += cores.iter().map(|c| c.retired.min(scfg.measure)).sum::<u64>();
        if T::ENABLED {
            // One span per measured interval on the stitched cycle axis
            // (intervals restart at cycle 0; the running total offsets them).
            hierarchy.telemetry_mut().on_span(TraceEvent {
                name: "measure",
                cat: "sampling",
                pid: trace_pid::SAMPLING,
                tid: coaxial_sim::small_u32_u64(j),
                start: cycles_total,
                dur: outcome.now,
                line: 0,
            });
        }
        cycles_total += outcome.now;
        skipped_cycles += outcome.stats.skipped_cycles;
        blocked_iters += outcome.stats.blocked_iters;
        gens.extend(cores.into_iter().map(Core::into_trace));

        intervals_run += 1;
        if scfg.ci_target > 0.0
            && intervals_run < scfg.intervals
            && series.len() >= 3
            && series.relative_half_width() <= scfg.ci_target
        {
            early_stopped = true;
            break;
        }
    }

    let nrun = intervals_run.max(1) as f64;
    agg_hier.l1_hit_ratio = l1_ratio_sum / nrun;
    agg_hier.l2_hit_ratio = l2_ratio_sum / nrun;
    let per_core_ipc: Vec<f64> = per_core_sum.iter().map(|s| s / nrun).collect();
    let mpki = if total_instr == 0 {
        0.0
    } else {
        agg_hier.llc_misses as f64 * 1000.0 / total_instr as f64
    };
    let window_ns = coaxial_sim::cycles_to_ns(agg_ddr.elapsed_cycles);
    let (read_gbs, write_gbs) = if window_ns > 0.0 {
        (agg_ddr.read_bytes as f64 / window_ns, agg_ddr.write_bytes as f64 / window_ns)
    } else {
        (0.0, 0.0)
    };
    let peak = cfg.peak_bandwidth_gbs();
    let cxl_link_utilization = link_util_sum.map(|(a, b)| {
        if link_weight > 0.0 {
            (a / link_weight, b / link_weight)
        } else {
            (0.0, 0.0)
        }
    });
    let report = RunReport {
        config_name: cfg.name.clone(),
        workload_names: sim.workload_names(),
        ipc: series.mean(),
        per_core_ipc,
        mpki,
        breakdown_ns: agg_hier.breakdown_ns(),
        l2_miss_latency_ns: coaxial_sim::cycles_f64_to_ns(agg_hier.mean_l2_miss_latency_cycles()),
        read_gbs,
        write_gbs,
        utilization: (read_gbs + write_gbs) / peak,
        bandwidth_gbs: read_gbs + write_gbs,
        llc_miss_ratio: agg_hier.llc_miss_ratio(),
        cxl_link_utilization,
        calm: agg_hier.calm,
        hier: agg_hier,
        ddr: agg_ddr,
        // Sum of measured-window lengths (each interval restarts at 0).
        cycles: cycles_total,
        instructions: scfg.measure * intervals_run,
    };
    let sampling = SamplingSummary {
        intervals_planned: scfg.intervals,
        intervals_run,
        early_stopped,
        warm_per_interval: scfg.warm,
        measure_per_interval: scfg.measure,
        horizon_instructions: horizon,
        detail_instructions: detail * intervals_run * ncores as u64,
        fast_forward_instructions: ff_instructions,
        ci_target: scfg.ci_target,
        ipc_mean: series.mean(),
        ipc_ci_half: series.ci_half_width(),
        ipc_samples: series.samples().to_vec(),
    };

    // Harvest-time metrics. `hier.*` carries the cross-interval aggregate;
    // per-channel `mem.*` counters are per-interval (each interval runs a
    // fresh backend) and are deliberately not exported — the aggregated
    // ChannelStats lives in `report.ddr`. `server.prefill.*`/`engine.*`
    // constant paths belong to the full-detail driver (lint M01), so the
    // sampled twins live under `sampling.*`.
    let mut metrics = MetricsRegistry::new();
    report.hier.export_metrics(&mut metrics, "hier");
    metrics.set_counter("sampling.intervals.planned", scfg.intervals);
    metrics.set_counter("sampling.intervals.run", intervals_run);
    metrics.set_counter("sampling.early_stopped", u64::from(early_stopped));
    metrics.set_counter("sampling.instructions.detail", sampling.detail_instructions);
    metrics.set_counter("sampling.instructions.fast_forward", ff_instructions);
    metrics.set_counter("sampling.prefill.restored", u64::from(restored));
    metrics.set_counter("sampling.engine.skipped_cycles", skipped_cycles);
    metrics.set_counter("sampling.engine.blocked_iters", blocked_iters);
    metrics.set_gauge("sampling.ipc.mean", sampling.ipc_mean);
    metrics.set_gauge("sampling.ipc.ci_half", sampling.ipc_ci_half);
    checkpoint_metrics(&mut metrics);
    (SampledReport { report, sampling }, hierarchy.into_telemetry(), metrics)
}
