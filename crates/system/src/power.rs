//! System-level power and energy-efficiency model (paper Table V).
//!
//! The paper models a 144-core, 500 W-TDP server (Sierra-Forest-class):
//! common components (cores, L1, L2) at 393 W, per-channel DDR5 MC+PHY at
//! 1.1 W, LLC leakage+access power from Cacti (94 W for 288 MB, 51 W for
//! 144 MB), PCIe 5.0 interface power at ~0.2 W/lane, and DRAMsim3-style
//! DIMM power. EDP = power × CPI²; ED²P = power × CPI³ (both lower =
//! better).

use serde::Serialize;

/// Power-model constants for the 144-core server.
#[derive(Debug, Clone, Serialize)]
pub struct PowerModel {
    /// Cores + L1 + L2 power, W.
    pub common_w: f64,
    /// DDR5 memory controller + PHY power per channel, W.
    pub ddr_mc_w_per_channel: f64,
    /// LLC power per MB (leakage + access), W. 94 W / 288 MB from Cacti.
    pub llc_w_per_mb: f64,
    /// PCIe 5.0 interface power per lane, W.
    pub pcie_w_per_lane: f64,
    /// DIMM power per channel at baseline-like utilization, W.
    pub dimm_w_baseline_per_channel: f64,
    /// DIMM power per channel at COAXIAL-like (lower) utilization, W.
    pub dimm_w_coaxial_per_channel: f64,
}

impl PowerModel {
    /// The paper's Table V constants.
    pub fn table_v() -> Self {
        Self {
            common_w: 393.0,
            ddr_mc_w_per_channel: 13.0 / 12.0, // ≈1.08 W
            llc_w_per_mb: 94.0 / 288.0,        // ≈0.326 W/MB
            pcie_w_per_lane: 0.2,
            dimm_w_baseline_per_channel: 146.0 / 12.0, // ≈12.2 W
            dimm_w_coaxial_per_channel: 358.0 / 48.0,  // ≈7.5 W
        }
    }
}

/// A server's power composition and efficiency metrics.
#[derive(Debug, Clone, Serialize)]
pub struct PowerReport {
    pub name: String,
    pub core_w: f64,
    pub ddr_mc_w: f64,
    pub llc_w: f64,
    pub cxl_w: f64,
    pub dimm_w: f64,
    pub total_w: f64,
    pub cpi: f64,
    pub edp: f64,
    pub ed2p: f64,
    pub perf_per_watt: f64,
}

/// Compute the power/EDP report for a server with the given composition.
///
/// `cpi` is the measured average cycles-per-instruction across workloads.
#[allow(clippy::too_many_arguments)]
pub fn report(
    name: &str,
    m: &PowerModel,
    llc_mb_total: f64,
    ddr_channels: u32,
    pcie_lanes: u32,
    dimm_w_per_channel: f64,
    cpi: f64,
) -> PowerReport {
    let core_w = m.common_w;
    let ddr_mc_w = ddr_channels as f64 * m.ddr_mc_w_per_channel;
    let llc_w = llc_mb_total * m.llc_w_per_mb;
    let cxl_w = pcie_lanes as f64 * m.pcie_w_per_lane;
    let dimm_w = ddr_channels as f64 * dimm_w_per_channel;
    let total_w = core_w + ddr_mc_w + llc_w + cxl_w + dimm_w;
    PowerReport {
        name: name.to_string(),
        core_w,
        ddr_mc_w,
        llc_w,
        cxl_w,
        dimm_w,
        total_w,
        cpi,
        edp: total_w * cpi * cpi,
        ed2p: total_w * cpi * cpi * cpi,
        perf_per_watt: 1.0 / (cpi * total_w),
    }
}

/// The paper's Table V rows, parameterized by the measured CPIs.
///
/// `baseline_cpi` and `coaxial_cpi` are the average CPI across all
/// workloads on each system (the paper measured 2.05 and 1.48).
pub fn table5(baseline_cpi: f64, coaxial_cpi: f64) -> (PowerReport, PowerReport) {
    let m = PowerModel::table_v();
    let baseline = report(
        "Baseline",
        &m,
        288.0, // 144 cores × 2 MB
        12,
        0,
        m.dimm_w_baseline_per_channel,
        baseline_cpi,
    );
    let coaxial = report(
        "COAXIAL",
        &m,
        144.0, // LLC halved
        48,
        48 * 8, // 48 x8 links
        m.dimm_w_coaxial_per_channel,
        coaxial_cpi,
    );
    (baseline, coaxial)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_total_power_matches_paper() {
        let (base, coax) = table5(2.05, 1.48);
        // Paper: 646 W baseline, 931 W COAXIAL.
        assert!((base.total_w - 646.0).abs() < 10.0, "baseline = {:.0} W", base.total_w);
        assert!((coax.total_w - 931.0).abs() < 15.0, "coaxial = {:.0} W", coax.total_w);
    }

    #[test]
    fn component_breakdown_matches_paper() {
        let (base, coax) = table5(2.05, 1.48);
        assert!((base.ddr_mc_w - 13.0).abs() < 0.5);
        assert!((coax.ddr_mc_w - 52.0).abs() < 1.0);
        assert!((base.llc_w - 94.0).abs() < 1.0);
        assert!((coax.llc_w - 51.0).abs() < 5.0);
        assert!((coax.cxl_w - 77.0).abs() < 1.0);
        assert!((base.dimm_w - 146.0).abs() < 1.0);
        assert!((coax.dimm_w - 358.0).abs() < 2.0);
    }

    #[test]
    fn edp_improves_despite_higher_power() {
        let (base, coax) = table5(2.05, 1.48);
        let edp_ratio = coax.edp / base.edp;
        let ed2p_ratio = coax.ed2p / base.ed2p;
        // Paper: 0.75x EDP, 0.53x ED²P.
        assert!((edp_ratio - 0.75).abs() < 0.03, "EDP ratio = {edp_ratio:.2}");
        assert!((ed2p_ratio - 0.53).abs() < 0.04, "ED²P ratio = {ed2p_ratio:.2}");
    }

    #[test]
    fn perf_per_watt_close_to_baseline() {
        let (base, coax) = table5(2.05, 1.48);
        let rel = coax.perf_per_watt / base.perf_per_watt;
        // Paper: 96% of the baseline's performance-per-watt.
        assert!((rel - 0.96).abs() < 0.03, "rel perf/W = {rel:.2}");
    }

    #[test]
    fn equal_cpi_means_coaxial_is_strictly_less_efficient() {
        // Sanity: with no speedup, more power must mean worse EDP.
        let (base, coax) = table5(2.0, 2.0);
        assert!(coax.edp > base.edp);
    }
}
