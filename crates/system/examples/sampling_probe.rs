//! Calibration probe for the interval-sampling estimator: runs every
//! registry workload full-detail and sampled at the same horizon and
//! prints the per-workload relative error, CI, and CI excess.
//!
//! This is the tool behind the bias numbers quoted in the `sampling`
//! module docs and DESIGN.md §5i (e.g. 500+1000 per-interval shape →
//! ~+17 % mean IPC bias; 5000+5000 → ~+0.1 %).
//!
//!     cargo run -p coaxial-system --example sampling_probe \
//!         [horizon] [intervals] [measure] [warm]

use coaxial_system::{EngineKind, SamplingConfig, Simulation, SystemConfig};
use coaxial_workloads::Workload;

fn main() {
    let arg = |i: usize, d: u64| std::env::args().nth(i).and_then(|s| s.parse().ok()).unwrap_or(d);
    let horizon = arg(1, 100_000);
    let scfg = SamplingConfig {
        intervals: arg(2, 5),
        measure: arg(3, 5_000),
        warm: arg(4, 5_000),
        ci_target: 0.0,
    };
    let mut worst = (0.0f64, String::new());
    let mut sum = 0.0;
    let mut n = 0u32;
    for (i, w) in Workload::all().iter().enumerate() {
        let cfg = match i % 5 {
            0 => SystemConfig::ddr_baseline(),
            1 => SystemConfig::coaxial_2x(),
            2 => SystemConfig::coaxial_4x(),
            3 => SystemConfig::coaxial_5x(),
            _ => SystemConfig::coaxial_asym(),
        };
        let kind = if i.is_multiple_of(2) { EngineKind::Event } else { EngineKind::Lockstep };
        let full = Simulation::new(cfg.clone(), w)
            .instructions_per_core(horizon)
            .warmup(2_000)
            .engine(kind)
            .run();
        let s = Simulation::new(cfg.clone(), w)
            .instructions_per_core(horizon)
            .engine(kind)
            .run_sampled(&scfg)
            .sampling;
        let rel = (s.ipc_mean - full.ipc) / full.ipc;
        let excess = ((s.ipc_mean - full.ipc).abs() - s.ipc_ci_half).max(0.0) / full.ipc;
        sum += rel;
        n += 1;
        if excess > worst.0 {
            worst = (excess, format!("{} on {}", w.name, cfg.name));
        }
        println!(
            "{:<14} {:<14} full {:.4} sampled {:.4} rel {rel:+.3} ci {:.4} excess {excess:.3}",
            w.name, cfg.name, full.ipc, s.ipc_mean, s.ipc_ci_half
        );
    }
    println!(
        "mean rel bias {:+.4}, worst excess-over-ci {:.4} ({})",
        sum / f64::from(n),
        worst.0,
        worst.1
    );
}
