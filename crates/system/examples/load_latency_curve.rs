fn main() {
    let pts = coaxial_system::experiments::fig2a_load_latency(
        &[0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        500_000,
    );
    for p in pts {
        println!(
            "target {:>4.2} achieved {:>4.2} avg {:>7.1} ns p90 {:>7.1} ns",
            p.target_utilization, p.achieved_utilization, p.avg_ns, p.p90_ns
        );
    }
}
