use coaxial_system::experiments::{fig5_main, geomean_speedup, Budget};

fn main() {
    let budget = Budget { instructions: 30_000, warmup: 5_000 };
    let t0 = std::time::Instant::now();
    let rows = fig5_main(budget);
    for r in &rows {
        let (on_b, q_b, s_b, _) = r.base.breakdown_ns;
        let (on_c, q_c, s_c, x_c) = r.coax.breakdown_ns;
        println!(
            "{:<15} speedup {:>5.2}  base[ipc {:>5.3} mpki {:>5.1} util {:>4.2} lat {:>6.1} = on {:>5.1}+q {:>6.1}+dram {:>4.1}]  coax[ipc {:>5.3} util {:>4.2} lat {:>6.1} = on {:>4.1}+q {:>5.1}+dram {:>4.1}+cxl {:>4.1}] rw {:>4.1}",
            r.workload, r.speedup,
            r.base.ipc, r.base.mpki, r.base.utilization, r.base.l2_miss_latency_ns, on_b, q_b, s_b,
            r.coax.ipc, r.coax.utilization, r.coax.l2_miss_latency_ns, on_c, q_c, s_c, x_c,
            r.base.read_gbs / r.base.write_gbs.max(0.01),
        );
    }
    println!("\ngeomean speedup: {:.3}", geomean_speedup(&rows));
    println!("elapsed: {:?}", t0.elapsed());
}
