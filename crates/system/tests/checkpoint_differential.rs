//! Differential test for the prefill checkpoint store: a run that restores
//! warmed state from a checkpoint must be observably indistinguishable from
//! the run that simulated its prefill cold.
//!
//! The store is keyed by the functional config slice alone (see
//! `config::FunctionalConfig` and lint E03), so this is the load-bearing
//! correctness claim behind the ≥3× sweep speedup: if restore changed *any*
//! bit of the report, metrics, or telemetry ledgers, checkpointing would be
//! an approximation, not an optimization. Every workload in the registry
//! runs three times — cold (populating the store), restored on the event
//! engine, and restored on the lockstep oracle — and all three must agree
//! byte-for-byte. `server.prefill.restored` pins down that the second and
//! third runs really did take the restore path rather than silently
//! re-simulating.
//!
//! The disk tier round-trips the same `PrefillState` payload through an
//! explicit `CheckpointStore` directory (no env coupling, so the test
//! cannot race other tests over process-wide state).

use coaxial_cache::{Hierarchy, HierarchyConfig, PrefillState};
use coaxial_sim::{CheckpointStore, Snapshot};
use coaxial_system::{EngineKind, Simulation, SystemConfig};
use coaxial_telemetry::TelemetryRecorder;
use coaxial_workloads::Workload;
use std::sync::Arc;

/// One run's complete observable output plus its restore flag.
struct Observed {
    report: String,
    metrics: Vec<String>,
    requests: String,
    restored: u64,
}

fn observe(kind: EngineKind, cfg: SystemConfig, w: &'static Workload) -> Observed {
    let (report, rec, metrics) = Simulation::new(cfg, w)
        .instructions_per_core(1_500)
        .warmup(300)
        .engine(kind)
        .run_with_telemetry(TelemetryRecorder::new().keep_requests(1 << 14));
    let restored = metrics.counter("server.prefill.restored").expect("restore flag exported");
    let metrics = metrics
        .iter()
        // Wall times and process-cumulative store counters legitimately
        // differ between cold and restored runs; everything else must not.
        .filter(|(path, _)| {
            !path.starts_with("server.prefill.") && !path.starts_with("server.checkpoint.")
        })
        .map(|(path, v)| format!("{path} = {v:?}"))
        .collect();
    Observed {
        report: format!("{report:?}"),
        metrics,
        requests: format!("{:?}", rec.requests),
        restored,
    }
}

#[test]
fn restored_runs_are_byte_identical_to_cold_runs_on_every_workload() {
    for (i, w) in Workload::all().iter().enumerate() {
        // A per-workload seed unique to this test keeps the first run a
        // guaranteed store miss even though the store is process-wide.
        let seed = 0xC4EC_0000 ^ (u64::try_from(i).unwrap() << 4);
        let cfg = || SystemConfig::coaxial_4x().with_seed(seed);
        let cold = observe(EngineKind::Event, cfg(), w);
        let warm = observe(EngineKind::Event, cfg(), w);
        let oracle = observe(EngineKind::Lockstep, cfg(), w);
        assert_eq!(cold.restored, 0, "{}: first run must simulate prefill cold", w.name);
        assert_eq!(warm.restored, 1, "{}: second run must restore the checkpoint", w.name);
        assert_eq!(oracle.restored, 1, "{}: oracle run must restore the checkpoint", w.name);
        for (other, label) in [(&warm, "restored"), (&oracle, "lockstep-restored")] {
            assert_eq!(cold.report, other.report, "{} ({label}): RunReport diverged", w.name);
            assert_eq!(cold.metrics, other.metrics, "{} ({label}): metrics diverged", w.name);
            assert_eq!(cold.requests, other.requests, "{} ({label}): ledgers diverged", w.name);
        }
    }
}

/// Geometry changes the functional slice, so a warmed snapshot must never
/// leak across LLC sizes or core counts — distinct keys, distinct state.
#[test]
fn different_functional_slices_do_not_share_checkpoints() {
    let w = Workload::by_name("mcf").expect("workload exists");
    let seed = 0xC4EC_BEEF;
    let four = observe(EngineKind::Event, SystemConfig::coaxial_4x().with_seed(seed), w);
    // Same workload + seed, different LLC geometry: must be a fresh miss.
    let two = observe(EngineKind::Event, SystemConfig::coaxial_2x().with_seed(seed), w);
    assert_eq!(four.restored, 0);
    assert_eq!(two.restored, 0, "different llc_mb_per_core must key a different checkpoint");
    let fewer = observe(
        EngineKind::Event,
        SystemConfig::coaxial_4x().with_seed(seed).with_active_cores(6),
        w,
    );
    assert_eq!(fewer.restored, 0, "different active_cores must key a different checkpoint");
}

/// The warmed `PrefillState` payload survives the disk tier byte-for-byte:
/// export from a prefilled hierarchy, round-trip through a store directory
/// with a fresh store instance (cold memory tier), import into a second
/// hierarchy, and compare the re-exported encodings.
#[test]
fn prefill_state_disk_round_trip_is_exact() {
    let w = Workload::by_name("bfs").expect("workload exists");
    let hcfg = || HierarchyConfig::table_iii(4, 2, 1.0, 76.8, coaxial_cache::CalmPolicy::Serial);
    let mut warm = Hierarchy::new(
        hcfg(),
        coaxial_dram::MultiChannel::new(&coaxial_dram::DramConfig::ddr5_4800(), 2),
    );
    for core in 0..4u32 {
        let mut t = w.trace(core, 0xD15C);
        for _ in 0..20_000 {
            let (line, is_store) = t.next_access();
            warm.prefill_access(core, line, is_store);
        }
    }
    let state = Arc::new(warm.export_prefill_state());
    let mut encoded = Vec::new();
    state.encode(&mut encoded);

    let dir = std::env::temp_dir().join(format!("coaxial-ckpt-sys-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut store: CheckpointStore<PrefillState> =
            CheckpointStore::new(1 << 24, Some(dir.clone()), "t");
        store.insert(7, Arc::clone(&state), state.approx_bytes());
        assert_eq!(store.counters().disk_errors, 0, "disk write must succeed");
    }
    let mut fresh: CheckpointStore<PrefillState> =
        CheckpointStore::new(1 << 24, Some(dir.clone()), "t");
    let decoded = fresh.get(7).expect("disk tier serves the snapshot");
    assert_eq!(fresh.counters().disk_hits, 1);
    let mut re_encoded = Vec::new();
    decoded.encode(&mut re_encoded);
    assert_eq!(encoded, re_encoded, "disk round trip must be byte-exact");

    // And importing the decoded state reproduces the warmed hierarchy.
    let mut cold = Hierarchy::new(
        hcfg(),
        coaxial_dram::MultiChannel::new(&coaxial_dram::DramConfig::ddr5_4800(), 2),
    );
    cold.import_prefill_state(&decoded);
    let mut after_import = Vec::new();
    cold.export_prefill_state().encode(&mut after_import);
    assert_eq!(encoded, after_import, "import/export must be lossless");
    let _ = std::fs::remove_dir_all(&dir);
}
