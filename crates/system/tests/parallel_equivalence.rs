//! The runner's determinism contract: `COAXIAL_JOBS=1` and `=N` must
//! produce bit-identical reports, in spec order, for the same batch.
//!
//! Uses the explicit-jobs entry points (`run_all_jobs`) rather than the
//! environment so this test cannot race with others in the harness.

use coaxial_system::runner::{parallel_map_jobs, run_all_jobs, RunSpec};
use coaxial_system::SystemConfig;
use coaxial_workloads::{mixes, Workload};

fn quick_batch() -> Vec<RunSpec> {
    const INSTR: u64 = 5_000;
    const WARMUP: u64 = 1_000;
    let mut specs = Vec::new();
    // A DDR config, two CXL variants, and a heterogeneous mix — enough
    // shape diversity to catch any cross-run state leakage.
    for name in ["mcf", "stream-copy", "raytrace", "omnetpp"] {
        let w = Workload::by_name(name).unwrap();
        specs.push(RunSpec::homogeneous(SystemConfig::ddr_baseline(), w, INSTR, WARMUP));
        specs.push(RunSpec::homogeneous(SystemConfig::coaxial_4x(), w, INSTR, WARMUP));
    }
    specs.push(RunSpec::homogeneous(
        SystemConfig::coaxial_asym(),
        Workload::all().first().unwrap(),
        INSTR,
        WARMUP,
    ));
    specs.push(RunSpec::mix(SystemConfig::coaxial_4x(), &mixes::mix(3, 12), INSTR, WARMUP));
    specs
}

#[test]
fn parallel_and_serial_reports_are_bit_identical() {
    let specs = quick_batch();
    let serial = run_all_jobs(&specs, 1);
    let parallel = run_all_jobs(&specs, 4);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.config_name, p.config_name, "spec {i}: order must be by index");
        assert_eq!(s.workload_names, p.workload_names, "spec {i}");
        assert_eq!(s.cycles, p.cycles, "spec {i} ({})", s.config_name);
        assert_eq!(s.instructions, p.instructions, "spec {i}");
        assert_eq!(s.ipc.to_bits(), p.ipc.to_bits(), "spec {i} IPC");
        for (a, b) in s.per_core_ipc.iter().zip(&p.per_core_ipc) {
            assert_eq!(a.to_bits(), b.to_bits(), "spec {i} per-core IPC");
        }
        assert_eq!(s.mpki.to_bits(), p.mpki.to_bits(), "spec {i} MPKI");
        assert_eq!(s.hier.l2_misses, p.hier.l2_misses, "spec {i} L2 misses");
        assert_eq!(s.hier.llc_misses, p.hier.llc_misses, "spec {i} LLC misses");
        assert_eq!(s.ddr.reads, p.ddr.reads, "spec {i} DDR reads");
        assert_eq!(s.ddr.writes, p.ddr.writes, "spec {i} DDR writes");
        assert_eq!(s.bandwidth_gbs.to_bits(), p.bandwidth_gbs.to_bits(), "spec {i} bandwidth");
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Same batch twice at the same width: nothing may depend on global
    // mutable state (thread-ids, statics, iteration order of maps).
    let specs = quick_batch();
    let a = run_all_jobs(&specs, 3);
    let b = run_all_jobs(&specs, 3);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.ipc.to_bits(), y.ipc.to_bits());
        assert_eq!(x.cycles, y.cycles);
        assert_eq!(x.hier.l2_misses, y.hier.l2_misses);
    }
}

#[test]
fn generic_map_keys_results_by_index() {
    let items: Vec<usize> = (0..50).collect();
    let out = parallel_map_jobs(&items, 7, |&i| i * 3);
    assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
}
