//! Differential test: the event-driven engine against the lockstep oracle.
//!
//! The event engine (`coaxial_system::engine::run_event`) claims *bit
//! identity* with the lockstep loop it replaced — not statistical
//! closeness. This harness holds that claim over the entire workload
//! registry: every workload runs twice, once per engine, under a
//! deterministically-seeded choice of system config and budget, and the
//! runs must agree on
//!
//! 1. the full serialized [`RunReport`] (every f64 bit, every counter),
//! 2. the harvested metrics registry — including the `engine.skipped_cycles`
//!    / `engine.blocked_iters` counters, which are engine-*independent* by
//!    the visited-cycle equivalence argument (engine.rs module docs) — and
//! 3. the raw per-request telemetry ledgers ([`MissRecord`]s), which pin
//!    the cycle-exact path of every L2 miss through the hierarchy.
//!
//! `server.prefill.*` and `server.checkpoint.*` metrics are excluded: the checkpoint stores are
//! process-wide and cumulative, so their hit counts depend on how many
//! runs this *process* has already done, not on the engine under test.
//!
//! Budgets are deliberately small (the registry is 36 workloads × 2
//! engines); the per-workload seed still varies config, active-core
//! count, and budget so the sweep covers DDR and CXL backends, partial
//! core occupancy, and warmup-boundary placement.

use coaxial_sim::SplitMix64;
use coaxial_system::{EngineKind, Simulation, SystemConfig};
use coaxial_telemetry::TelemetryRecorder;
use coaxial_workloads::Workload;

/// One engine's complete observable output, serialized for comparison.
/// `Debug`-formatted: Rust renders `f64` as the shortest string that parses
/// back to the same bits, so equality of the strings is equality of the bits.
struct Observed {
    report: String,
    metrics: Vec<String>,
    requests: String,
}

fn observe(
    kind: EngineKind,
    cfg: SystemConfig,
    w: &'static Workload,
    budget: (u64, u64),
) -> Observed {
    let (instr, warmup) = budget;
    let (report, rec, metrics) = Simulation::new(cfg, w)
        .instructions_per_core(instr)
        .warmup(warmup)
        .engine(kind)
        .run_with_telemetry(TelemetryRecorder::new().keep_requests(1 << 16));
    let metrics = metrics
        .iter()
        .filter(|(path, _)| {
            !path.starts_with("server.prefill.") && !path.starts_with("server.checkpoint.")
        })
        .map(|(path, v)| format!("{path} = {v:?}"))
        .collect();
    Observed { report: format!("{report:?}"), metrics, requests: format!("{:?}", rec.requests) }
}

/// Deterministic per-workload run parameters: the config/budget draw is
/// seeded by the workload's registry index, so failures reproduce exactly.
fn draw(rng: &mut SplitMix64) -> (SystemConfig, (u64, u64)) {
    let cfg = match rng.next_below(5) {
        0 => SystemConfig::ddr_baseline(),
        1 => SystemConfig::coaxial_2x(),
        2 => SystemConfig::coaxial_4x(),
        3 => SystemConfig::coaxial_5x(),
        _ => SystemConfig::coaxial_asym(),
    };
    // Occasionally leave cores idle: parked-core bookkeeping must stay
    // exact when some slots never block (or never run).
    let cfg = if rng.chance(0.25) {
        let cores = u64::try_from(cfg.functional.cores).unwrap();
        let active = 1 + coaxial_sim::idx(rng.next_below(cores - 1));
        cfg.with_active_cores(active)
    } else {
        cfg
    };
    let instr = 800 + rng.next_below(800);
    let warmup = rng.next_below(400);
    (cfg, (instr, warmup))
}

#[test]
fn event_engine_matches_lockstep_oracle_on_every_workload() {
    for (i, w) in Workload::all().iter().enumerate() {
        let mut rng = SplitMix64::new(0xD1FF ^ (u64::try_from(i).unwrap() << 8));
        let (cfg, budget) = draw(&mut rng);
        let label = format!("{} on {} (instr={}, warmup={})", w.name, cfg.name, budget.0, budget.1);
        let oracle = observe(EngineKind::Lockstep, cfg.clone(), w, budget);
        let event = observe(EngineKind::Event, cfg, w, budget);
        assert_eq!(event.report, oracle.report, "{label}: RunReport diverged");
        assert_eq!(event.metrics, oracle.metrics, "{label}: metrics registry diverged");
        assert_eq!(event.requests, oracle.requests, "{label}: telemetry ledgers diverged");
    }
}

#[test]
fn engine_env_override_is_honoured_and_validated() {
    // from_env maps unset → Event, "lockstep"/"event" (any case) → the
    // engine, and anything else must refuse to run rather than silently
    // fall back. Exercised via the parse layer only: tests share one
    // process environment, so we never set the variable here.
    assert_eq!(EngineKind::from_env().name(), "event");
    assert_eq!(EngineKind::parse(Some("lockstep")).name(), "lockstep");
    assert_eq!(EngineKind::parse(Some("EVENT")).name(), "event");
    assert_eq!(EngineKind::parse(None).name(), "event");
    assert!(std::panic::catch_unwind(|| EngineKind::parse(Some("typo"))).is_err());
}
