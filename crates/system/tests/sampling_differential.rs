//! Differential test: SMARTS interval sampling against full-detail runs.
//!
//! Sampling is an *estimator*, not a bit-identical transform, so unlike
//! `engine_differential` this harness holds statistical and structural
//! claims instead of equality of every bit:
//!
//! 1. **Accuracy** — over the entire workload registry, on both engines
//!    and across the config zoo, the sampled IPC lands within the
//!    reported 95 % confidence interval of the full-detail IPC at the
//!    same per-core horizon, plus a small tolerance floor. The floor
//!    exists because the synthetic workloads are stationary enough that
//!    the between-interval variance (what the t-interval measures) can
//!    collapse below the residual warm-up bias of truncated intervals;
//!    on real traces the variance term dominates and the floor is slack.
//! 2. **Determinism** — the complete `SampledReport` (report + summary,
//!    every f64 bit) is byte-stable across repeat runs and across
//!    engines: the engines are bit-identical, so an estimator built on
//!    them must be too.
//! 3. **Early stopping** — a loose relative-CI target ends the run
//!    before the planned interval count, a zero target never does, and
//!    the instruction accounting (detail + fast-forward vs horizon)
//!    stays consistent either way.

use coaxial_system::{EngineKind, SampledReport, SamplingConfig, Simulation, SystemConfig};
use coaxial_workloads::Workload;

/// Per-core horizon shared by the full-detail run and the sampled run.
const HORIZON: u64 = 100_000;

/// Interval shape: 5 × (5000 warm + 5000 measure) = 50 000 detailed
/// instructions per core — half the horizon, so the fast-forward path is
/// genuinely exercised on every workload. The warm span matches the
/// measured one deliberately: each interval restarts timing state
/// (queues, MSHRs, predictors) from scratch, and on bandwidth-saturated
/// geometries the queue backlog converges slowly, so short detail
/// warm-ups leave a measurable optimistic bias. Empirically on this
/// registry: ~+17 % mean bias at 500+1000 per interval, ~+3 % at
/// 4000+4000, ~+0.1 % at this shape (see DESIGN.md §5i).
fn scfg() -> SamplingConfig {
    SamplingConfig { intervals: 5, measure: 5_000, warm: 5_000, ci_target: 0.0 }
}

/// The config zoo, cycled by registry index so the sweep covers the DDR
/// baseline and every CXL geometry without 5× the runtime.
fn config_for(i: usize) -> SystemConfig {
    match i % 5 {
        0 => SystemConfig::ddr_baseline(),
        1 => SystemConfig::coaxial_2x(),
        2 => SystemConfig::coaxial_4x(),
        3 => SystemConfig::coaxial_5x(),
        _ => SystemConfig::coaxial_asym(),
    }
}

fn engine_for(i: usize) -> EngineKind {
    if i.is_multiple_of(2) {
        EngineKind::Event
    } else {
        EngineKind::Lockstep
    }
}

fn run_sampled(cfg: SystemConfig, w: &'static Workload, kind: EngineKind) -> SampledReport {
    Simulation::new(cfg, w).instructions_per_core(HORIZON).engine(kind).run_sampled(&scfg())
}

#[test]
fn sampled_ipc_lands_within_ci_of_full_detail_on_every_workload() {
    for (i, w) in Workload::all().iter().enumerate() {
        let cfg = config_for(i);
        let kind = engine_for(i);
        let label = format!("{} on {} ({})", w.name, cfg.name, kind.name());

        let full = Simulation::new(cfg.clone(), w)
            .instructions_per_core(HORIZON)
            .warmup(2_000)
            .engine(kind)
            .run();
        let sampled = run_sampled(cfg, w, kind);
        let s = &sampled.sampling;

        assert_eq!(s.intervals_run, 5, "{label}: no early stop at ci_target 0");
        assert!(s.fast_forward_instructions > 0, "{label}: fast-forward must engage");
        // The sampled estimate must land inside its own stated CI around
        // the full-detail IPC, up to the stationarity floor (6 % of the
        // full-detail IPC; worst observed excess at this shape is ~4 %).
        let err = (s.ipc_mean - full.ipc).abs();
        let tol = s.ipc_ci_half + 0.06 * full.ipc;
        assert!(
            err <= tol,
            "{label}: sampled {:.4} vs full {:.4}: |err| {err:.4} > ci {:.4} + floor {:.4}",
            s.ipc_mean,
            full.ipc,
            s.ipc_ci_half,
            0.06 * full.ipc
        );
    }
}

#[test]
fn ci_coverage_holds_across_seeds_on_both_engines() {
    // Same claim as above, but varying the one remaining input the
    // registry sweep holds fixed: the workload-generation/CALM seed.
    let w = Workload::by_name("mcf").expect("mcf exists");
    for (i, base_seed) in [1u64, 0xD1FF, 0xC0A51A1].into_iter().enumerate() {
        for kind in [EngineKind::Event, EngineKind::Lockstep] {
            let cfg = SystemConfig::coaxial_4x().with_seed(base_seed ^ ((i as u64) << 8));
            let label = format!("mcf seed {base_seed:#x} ({})", kind.name());
            let full = Simulation::new(cfg.clone(), w)
                .instructions_per_core(HORIZON)
                .warmup(2_000)
                .engine(kind)
                .run();
            let s = run_sampled(cfg, w, kind).sampling;
            let err = (s.ipc_mean - full.ipc).abs();
            let tol = s.ipc_ci_half + 0.06 * full.ipc;
            assert!(err <= tol, "{label}: |err| {err:.4} > {tol:.4}");
        }
    }
}

#[test]
fn sampled_reports_are_deterministic_and_engine_invariant() {
    let w = Workload::by_name("omnetpp").expect("omnetpp exists");
    // `Debug` renders every f64 as the shortest string that round-trips,
    // so string equality is bit equality of the whole report.
    let a = format!("{:?}", run_sampled(SystemConfig::coaxial_4x(), w, EngineKind::Event));
    let b = format!("{:?}", run_sampled(SystemConfig::coaxial_4x(), w, EngineKind::Event));
    assert_eq!(a, b, "same seed must reproduce the sampled report bit-for-bit");
    let c = format!("{:?}", run_sampled(SystemConfig::coaxial_4x(), w, EngineKind::Lockstep));
    assert_eq!(a, c, "the engines are bit-identical, so sampling on them must be too");
}

#[test]
fn early_stopping_respects_the_ci_target_and_keeps_accounting_consistent() {
    let w = Workload::by_name("stream-add").expect("stream-add exists");
    let sim = || Simulation::new(SystemConfig::coaxial_4x(), w).instructions_per_core(HORIZON);

    // A very loose relative target (90 %) is met at the 3-interval
    // minimum on any workload with finite variance.
    let loose = SamplingConfig { ci_target: 0.9, ..scfg() };
    let s = sim().run_sampled(&loose).sampling;
    assert!(s.early_stopped, "90 % relative CI must stop early");
    assert_eq!(s.intervals_run, 3, "stops at the 3-sample minimum");
    assert!(s.intervals_run < s.intervals_planned);
    assert_eq!(s.ipc_samples.len(), 3);

    // Target 0 disables early stopping outright.
    let s = sim().run_sampled(&scfg()).sampling;
    assert!(!s.early_stopped);
    assert_eq!(s.intervals_run, s.intervals_planned);

    // Accounting: per-core detail is warm+measure per interval, and the
    // per-core covered span (detail + fast-forward) tracks the horizon.
    let cores = 12u64;
    assert_eq!(s.detail_instructions, (5_000 + 5_000) * s.intervals_run * cores);
    let per_core_covered = (s.detail_instructions + s.fast_forward_instructions) / cores;
    assert!(
        per_core_covered >= HORIZON.saturating_sub(s.intervals_run * 64),
        "covered {per_core_covered} must track the {HORIZON} horizon"
    );
}
