//! System-level telemetry contracts:
//!
//! * **Equivalence** — attaching a [`TelemetryRecorder`] to a full
//!   `Simulation` run must not change a single bit of the [`RunReport`].
//!   `run()` and `run_with_telemetry(...)` share one code path whose only
//!   difference is the sink type parameter, and every stamping site is
//!   guarded by `TelemetrySink::ENABLED` — this test holds that contract
//!   at the outermost layer, so figure/table outputs are byte-identical
//!   with telemetry on or off.
//! * **Conservation** — per-component cycles of every recorded request sum
//!   exactly to its end-to-end L2-miss latency, all the way up through the
//!   driver (prefill, warmup reset, cycle skipping included).
//! * **Metrics** — the harvested registry agrees with the report's own
//!   statistics and carries backend and prefill-cache counters.

use coaxial_system::experiments::{latency_breakdown, Budget};
use coaxial_system::{RunReport, Simulation, SystemConfig};
use coaxial_telemetry::{TelemetryRecorder, COMPONENTS};
use coaxial_workloads::Workload;

const INSTR: u64 = 4_000;
const WARMUP: u64 = 1_000;

fn sim(cfg: SystemConfig, wl: &str) -> Simulation {
    let w = Workload::by_name(wl).expect("workload exists");
    Simulation::new(cfg, w).instructions_per_core(INSTR).warmup(WARMUP)
}

/// Field-by-field bit equality of two reports (f64s compared via to_bits).
fn assert_reports_identical(a: &RunReport, b: &RunReport, label: &str) {
    assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "{label}: ipc");
    let pa: Vec<u64> = a.per_core_ipc.iter().map(|v| v.to_bits()).collect();
    let pb: Vec<u64> = b.per_core_ipc.iter().map(|v| v.to_bits()).collect();
    assert_eq!(pa, pb, "{label}: per-core ipc");
    assert_eq!(a.mpki.to_bits(), b.mpki.to_bits(), "{label}: mpki");
    assert_eq!(a.breakdown_ns, b.breakdown_ns, "{label}: breakdown");
    assert_eq!(
        a.l2_miss_latency_ns.to_bits(),
        b.l2_miss_latency_ns.to_bits(),
        "{label}: miss latency"
    );
    assert_eq!(a.bandwidth_gbs.to_bits(), b.bandwidth_gbs.to_bits(), "{label}: bandwidth");
    assert_eq!(a.utilization.to_bits(), b.utilization.to_bits(), "{label}: utilization");
    assert_eq!(a.cxl_link_utilization, b.cxl_link_utilization, "{label}: link util");
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(a.hier.l2_misses, b.hier.l2_misses, "{label}: l2 misses");
    assert_eq!(a.hier.llc_misses, b.hier.llc_misses, "{label}: llc misses");
    assert_eq!(a.ddr.reads, b.ddr.reads, "{label}: ddr reads");
    assert_eq!(a.ddr.writes, b.ddr.writes, "{label}: ddr writes");
    assert_eq!(a.ddr.act, b.ddr.act, "{label}: ACTs");
}

#[test]
fn attaching_telemetry_does_not_change_the_report() {
    for (cfg, label) in
        [(SystemConfig::ddr_baseline(), "ddr"), (SystemConfig::coaxial_4x(), "coaxial")]
    {
        let plain = sim(cfg.clone(), "mcf").run();
        let (with_tel, rec, _metrics) =
            sim(cfg, "mcf").run_with_telemetry(TelemetryRecorder::new());
        assert_reports_identical(&plain, &with_tel, label);
        assert!(rec.attribution.requests() > 0, "{label}: recorder saw traffic");
    }
}

#[test]
fn conservation_holds_through_the_full_driver() {
    let (report, rec, _metrics) = sim(SystemConfig::coaxial_4x(), "stream-copy")
        .run_with_telemetry(TelemetryRecorder::new().keep_requests(1 << 20));
    assert!(!rec.requests.is_empty());
    for r in &rec.requests {
        let sum: u64 = r.components().iter().sum();
        assert_eq!(sum, r.total(), "conservation violated for line {:#x}", r.line);
    }
    let total_mean = rec.attribution.total.mean();
    let comp_sum: f64 = COMPONENTS.iter().map(|&c| rec.attribution.mean_cycles(c)).sum();
    assert!((total_mean - comp_sum).abs() < 1e-6, "means: {comp_sum} vs {total_mean}");
    // The attributed mean tracks the driver's own l2-miss latency (small
    // slack: in-flight requests at the warmup boundary land differently).
    let att_ns = total_mean * coaxial_sim::NS_PER_CYCLE;
    assert!(
        (att_ns - report.l2_miss_latency_ns).abs() / report.l2_miss_latency_ns < 0.05,
        "attributed {att_ns:.1} ns vs report {:.1} ns",
        report.l2_miss_latency_ns
    );
}

#[test]
fn harvested_metrics_match_report_and_cover_all_layers() {
    let (report, _rec, metrics) =
        sim(SystemConfig::coaxial_4x(), "stream-copy").run_with_telemetry(TelemetryRecorder::new());
    assert_eq!(metrics.counter("hier.l2_misses"), Some(report.hier.l2_misses));
    assert_eq!(metrics.counter("hier.mem.reads"), Some(report.hier.mem_reads));
    // Backend metrics: per-channel DDR counters behind the CXL links sum
    // to the report's aggregate.
    let ch_reads: u64 =
        (0..4).map(|i| metrics.counter(&format!("mem.ch{i}.ddr.reads")).unwrap()).sum();
    assert_eq!(ch_reads, report.ddr.reads);
    // Checkpoint stores surface process-wide counters, and each run
    // reports its prefill wall time and restore outcome.
    assert!(metrics.counter("server.checkpoint.state.mem_hits").is_some());
    assert!(metrics.counter("server.checkpoint.streams.misses").is_some());
    assert!(
        metrics.counter("server.checkpoint.state.mem_hits").unwrap()
            + metrics.counter("server.checkpoint.state.disk_hits").unwrap()
            + metrics.counter("server.checkpoint.state.misses").unwrap()
            > 0
    );
    assert!(metrics.counter("server.prefill.wall_ns").is_some());
    assert!(metrics.counter("server.prefill.restored").is_some());
    // And the registry renders without panicking.
    assert!(metrics.render(None).contains("hier.l2_misses"));
}

#[test]
fn breakdown_rows_conserve_latency_and_attribute_cxl() {
    let rows = latency_breakdown(
        &[SystemConfig::ddr_baseline(), SystemConfig::coaxial_4x()],
        "stream-copy",
        Budget { instructions: INSTR, warmup: WARMUP },
    );
    assert_eq!(rows.len(), 2);
    for row in &rows {
        let sum: f64 = row.components_ns.iter().map(|(_, v)| v).sum();
        assert!(
            (sum - row.total_ns).abs() < 1e-6,
            "{}: components {sum} != total {}",
            row.config_name,
            row.total_ns
        );
        assert!(row.requests > 0, "{}: no requests attributed", row.config_name);
    }
    let link = |r: &coaxial_system::experiments::BreakdownRow| {
        r.components_ns.iter().find(|(n, _)| n == "cxl_link").map(|&(_, v)| v).unwrap()
    };
    assert_eq!(link(&rows[0]), 0.0, "DDR baseline has no CXL component");
    assert!(link(&rows[1]) > 30.0, "COAXIAL pays the link premium: {}", link(&rows[1]));
}
