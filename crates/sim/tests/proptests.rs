//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use coaxial_sim::{BoundedQueue, Histogram, SplitMix64};

proptest! {
    /// Histogram percentiles are within one log-bucket (~3.2% relative
    /// width, but never more than one step of the sorted data) of the
    /// exact empirical quantile.
    #[test]
    fn histogram_percentile_tracks_exact_quantile(
        mut values in proptest::collection::vec(1u64..1_000_000, 10..500),
        p in 1.0f64..100.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let idx = coaxial_sim::trunc_usize((p / 100.0 * values.len() as f64).ceil()).clamp(1, values.len()) - 1;
        let exact = values[idx] as f64;
        let got = h.percentile(p) as f64;
        // Bucket floors under-report by at most one bucket width (~3.2%).
        prop_assert!(got <= exact * 1.001 + 1.0, "got {got} > exact {exact}");
        prop_assert!(got >= exact / 1.04 - 1.0, "got {got} << exact {exact}");
    }

    /// Histogram mean matches the arithmetic mean exactly (it tracks the
    /// true sum, not bucket midpoints).
    #[test]
    fn histogram_mean_is_exact(values in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let exact = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - exact).abs() < 1e-6);
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }

    /// BoundedQueue behaves exactly like a capacity-checked VecDeque under
    /// arbitrary push/pop/remove sequences (model-based test).
    #[test]
    fn bounded_queue_matches_model(
        cap in 1usize..16,
        ops in proptest::collection::vec((0u8..3, 0u8..16), 0..200),
    ) {
        let mut q: BoundedQueue<u8> = BoundedQueue::new(cap);
        let mut model: std::collections::VecDeque<u8> = Default::default();
        for (op, val) in ops {
            match op {
                0 => {
                    let expect_ok = model.len() < cap;
                    let got = q.try_push(val).is_ok();
                    prop_assert_eq!(got, expect_ok);
                    if expect_ok {
                        model.push_back(val);
                    }
                }
                1 => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
                _ => {
                    let idx = val as usize;
                    let got = q.remove(idx);
                    let want = if idx < model.len() { model.remove(idx) } else { None };
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_full(), model.len() >= cap);
            prop_assert_eq!(q.front().copied(), model.front().copied());
        }
    }

    /// SplitMix64 streams with different seeds do not correlate on long
    /// prefixes, and `next_below` is exhaustive over small ranges.
    #[test]
    fn rng_small_range_is_exhaustive(seed in 0u64..10_000, bound in 2u64..9) {
        let mut rng = SplitMix64::new(seed);
        let mut seen = vec![false; coaxial_sim::idx(bound)];
        for _ in 0..(bound * 200) {
            seen[coaxial_sim::idx(rng.next_below(bound))] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
