//! Concurrent disk-tier stress test for [`CheckpointStore`].
//!
//! The gateway makes the same-key write race routine: N identical
//! requests dedup to one simulation, but N *near*-identical requests
//! (same functional slice, different timing) each prefill through their
//! own store handle and race tmp+rename publishes of the same
//! content-addressed `.ckpt`. The contract under that race: a reader
//! observes either no file or one complete, correctly keyed payload —
//! never a torn write (which would surface as a `disk_errors` bump when
//! the header or codec check rejects the file).
//!
//! This is a regression test for the pid-only temp-file name: two
//! threads in one process used to share `.tmpPID` and truncate each
//! other mid-write, occasionally renaming a torn payload into place.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};

use coaxial_sim::checkpoint::codec;
use coaxial_sim::{CheckpointStore, KeyHasher, Snapshot};

/// Tagged word vector with a self-check: `tag` doubles as the seed of
/// the word pattern, so any byte-level tearing that survives the codec's
/// structural checks still fails verification.
#[derive(Debug, PartialEq, Eq)]
struct Blob {
    tag: u64,
    words: Vec<u64>,
}

impl Blob {
    fn for_round(round: u64) -> Self {
        let mut rng = coaxial_sim::SplitMix64::new(round ^ 0xCC57_0BE5);
        let words = (0..512).map(|_| rng.next_u64()).collect();
        Self { tag: round, words }
    }
}

impl Snapshot for Blob {
    fn encode(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.tag);
        codec::put_u64s(out, &self.words);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = codec::Reader::new(bytes);
        let blob = Self { tag: r.u64()?, words: r.u64s()? };
        r.done().then_some(blob)
    }
}

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!("coaxial-ckpt-stress-{}-{label}", std::process::id()))
}

fn round_key(round: u64) -> u128 {
    let mut h = KeyHasher::new("coaxial/test/ckpt-stress/v1");
    h.write_u64(round);
    h.finish()
}

/// Threads race same-key writes and reads through independent store
/// handles sharing one directory; every decoded value must be exact and
/// no handle may record a disk error.
#[test]
fn racing_same_key_writers_never_publish_a_torn_checkpoint() {
    const THREADS: usize = 8;
    const ROUNDS: u64 = 120;

    let dir = scratch("race");
    let _ = std::fs::remove_dir_all(&dir);
    let start = Arc::new(Barrier::new(THREADS));

    let error_counts: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let dir = dir.clone();
                let start = Arc::clone(&start);
                s.spawn(move || {
                    // Tiny memory budget forces every read through the
                    // disk tier, maximizing decode pressure on the race.
                    let mut store: CheckpointStore<Blob> =
                        CheckpointStore::new(1, Some(dir), "stress");
                    for round in 0..ROUNDS {
                        start.wait();
                        let key = round_key(round);
                        let want = Blob::for_round(round);
                        // Content-addressed contract: same key ⇒ same
                        // payload, so racing writers are benign as long
                        // as each publish is atomic.
                        if t % 2 == 0 || round % 3 == 0 {
                            let mut bytes = Vec::new();
                            want.encode(&mut bytes);
                            store.insert(key, Arc::new(Blob::for_round(round)), bytes.len() as u64);
                        }
                        for _ in 0..4 {
                            if let Some(got) = store.get(key) {
                                assert_eq!(*got, want, "torn or mis-keyed checkpoint observed");
                            }
                        }
                    }
                    store.counters().disk_errors
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress worker panicked")).collect()
    });

    assert_eq!(error_counts.iter().sum::<u64>(), 0, "disk errors under race: {error_counts:?}");

    // Quiescent sweep: every published file decodes under its own key.
    let mut checker: CheckpointStore<Blob> =
        CheckpointStore::new(u64::MAX, Some(dir.clone()), "stress");
    for round in 0..ROUNDS {
        if let Some(got) = checker.get(round_key(round)) {
            assert_eq!(*got, Blob::for_round(round));
        }
    }
    assert_eq!(checker.counters().disk_errors, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
