//! Typed narrowing helpers.
//!
//! The workspace gates `clippy::cast_possible_truncation`, and lint T01
//! forbids bare lossy `as` casts on cycle-carrying integers. Every
//! intentional narrowing goes through one of these helpers instead, so the
//! conversion's contract is named at the call site and the unchecked cast
//! lives in exactly one reviewed place per shape.
//!
//! All helpers compile to the same machine code as the `as` cast they
//! wrap; `idx`/`small_u32` additionally carry a `debug_assert` so a
//! violated bound fails loudly in test builds instead of wrapping.

/// Convert a simulated quantity (line number, address, count) to an array
/// index. The simulator targets 64-bit hosts, where `usize` is `u64`.
#[inline]
#[allow(clippy::cast_possible_truncation)]
pub fn idx(x: u64) -> usize {
    debug_assert!(u64::try_from(usize::MAX).map_or(true, |max| x <= max));
    x as usize
}

/// Convert a small structural index (core, channel, bank, lane) to `u32`.
/// Callers guarantee the value is bounded by machine geometry (at most a
/// few thousand), never by simulated time.
#[inline]
#[allow(clippy::cast_possible_truncation)]
pub fn small_u32(x: usize) -> u32 {
    debug_assert!(x <= u32::MAX as usize);
    x as u32
}

/// [`small_u32`] for values carried in `u64` (e.g. degrees or counts
/// derived from 64-bit RNG draws) that are structurally bounded well
/// below `2^32`.
#[inline]
#[allow(clippy::cast_possible_truncation)]
pub fn small_u32_u64(x: u64) -> u32 {
    debug_assert!(x <= u64::from(u32::MAX));
    x as u32
}

/// Truncate a non-negative float to `u64` with `as` semantics (toward
/// zero, saturating). For sizing/config math at the report or setup
/// boundary — never for accumulating simulated time (lint T02).
#[inline]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn trunc_u64(x: f64) -> u64 {
    x as u64
}

/// Truncate a non-negative float to `u32` with `as` semantics. See
/// [`trunc_u64`].
#[inline]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn trunc_u32(x: f64) -> u32 {
    x as u32
}

/// Truncate a non-negative float to `usize` with `as` semantics. See
/// [`trunc_u64`].
#[inline]
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub fn trunc_usize(x: f64) -> usize {
    x as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_roundtrips_and_small_u32_bounds() {
        assert_eq!(idx(12345), 12345usize);
        assert_eq!(small_u32(11), 11u32);
    }

    #[test]
    fn trunc_matches_as_semantics() {
        assert_eq!(trunc_u64(3.9), 3);
        assert_eq!(trunc_u32(2.0_f64.powi(40)), u32::MAX, "saturates like `as`");
        assert_eq!(trunc_usize(-0.5), 0, "negative saturates to zero like `as`");
    }
}
