//! Interval-sample aggregation for SMARTS-style sampled runs.
//!
//! The sampling driver (`crates/system/src/sampling.rs`) runs a short
//! detailed measurement interval every N instructions and records one IPC
//! (or latency) observation per interval. This module turns those
//! observations into a mean ± confidence interval: the systematic-sampling
//! estimator of SMARTS (Wunderlich et al., ISCA '03) treats the per-interval
//! samples as approximately independent draws and reports a Student-t
//! confidence interval on their mean.
//!
//! Everything here is deterministic arithmetic over the pushed samples — no
//! RNG, no wall clock — so sampled reports stay byte-identical for a given
//! config seed.

/// Two-sided 95 % Student-t critical values for 1..=30 degrees of freedom.
/// Beyond 30 the normal approximation (1.96) is within ~2 % and we use it
/// directly. Constant table keeps the estimator dependency-free and exactly
/// reproducible.
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// 95 % two-sided Student-t critical value for `df` degrees of freedom.
#[must_use]
pub fn t_critical_95(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= T95.len() {
        T95[df - 1]
    } else {
        1.96
    }
}

/// A series of per-interval observations with mean / spread / confidence-
/// interval queries. Samples are kept in push order so the series itself can
/// be serialized into reports for inspection.
#[derive(Debug, Clone, Default)]
pub struct SampleSeries {
    samples: Vec<f64>,
}

impl SampleSeries {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Arithmetic mean of the samples; 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let nf = self.samples.len() as f64;
        self.samples.iter().sum::<f64>() / nf
    }

    /// Sample standard deviation (Bessel-corrected, n−1 denominator);
    /// 0.0 with fewer than two samples.
    #[must_use]
    pub fn sample_stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self.samples.iter().map(|s| (s - mean) * (s - mean)).sum();
        #[allow(clippy::cast_precision_loss)]
        let df = (self.samples.len() - 1) as f64;
        (ss / df).sqrt()
    }

    /// Half-width of the 95 % confidence interval on the mean
    /// (`t · s / √n`). With fewer than two samples the Student-t interval
    /// is undefined (df = 0), so this returns `f64::INFINITY` — a
    /// misleading ±0 would read as *perfect* confidence from a single
    /// measurement interval. JSON emitters render the infinite width as
    /// `null` (see `coaxial-gateway`'s `emit_f64`).
    #[must_use]
    pub fn ci_half_width(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return f64::INFINITY;
        }
        #[allow(clippy::cast_precision_loss)]
        let nf = n as f64;
        t_critical_95(n - 1) * self.sample_stddev() / nf.sqrt()
    }

    /// CI half-width divided by the mean — the early-stopping criterion.
    /// Returns `f64::INFINITY` when the mean is zero or there are fewer than
    /// two samples, so a caller comparing against a target never stops early
    /// on degenerate data.
    #[must_use]
    pub fn relative_half_width(&self) -> f64 {
        let mean = self.mean();
        if self.samples.len() < 2 || mean == 0.0 {
            return f64::INFINITY;
        }
        self.ci_half_width() / mean.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_are_degenerate() {
        let mut s = SampleSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.ci_half_width(), f64::INFINITY, "no samples: CI undefined, never zero");
        assert_eq!(s.relative_half_width(), f64::INFINITY);
        s.push(2.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.sample_stddev(), 0.0);
        assert_eq!(
            s.ci_half_width(),
            f64::INFINITY,
            "a single interval must flag its CI as undefined, not report ±0"
        );
        assert_eq!(s.relative_half_width(), f64::INFINITY, "one sample can never stop early");
    }

    #[test]
    fn mean_and_stddev_match_hand_calculation() {
        let mut s = SampleSeries::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert!((s.mean() - 2.5).abs() < 1e-12);
        // variance = ((1.5)^2 + (0.5)^2 + (0.5)^2 + (1.5)^2) / 3 = 5/3
        assert!((s.sample_stddev() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        // df = 3 -> t = 3.182
        let expect = 3.182 * (5.0f64 / 3.0).sqrt() / 2.0;
        assert!((s.ci_half_width() - expect).abs() < 1e-12);
    }

    #[test]
    fn identical_samples_have_zero_width() {
        let mut s = SampleSeries::new();
        for _ in 0..8 {
            s.push(1.25);
        }
        assert_eq!(s.ci_half_width(), 0.0);
        assert_eq!(s.relative_half_width(), 0.0);
    }

    #[test]
    fn t_table_edges() {
        assert_eq!(t_critical_95(0), f64::INFINITY);
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(31) - 1.96).abs() < 1e-9);
    }
}
