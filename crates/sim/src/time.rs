//! System clock and time unit conversions.
//!
//! Everything in the simulator advances on a single 2.4 GHz clock. The paper
//! (Table III) clocks its 12 OoO cores at 2.4 GHz; DDR5-4800 transfers data
//! on both edges of a 2.4 GHz I/O clock, so memory timing parameters quoted
//! in memory clocks translate 1:1 into system cycles.

/// Simulation timestamp / duration, in system clock cycles (2.4 GHz).
pub type Cycle = u64;

/// System (CPU and DDR5-4800 I/O) clock frequency in GHz.
pub const CPU_FREQ_GHZ: f64 = 2.4;

/// Duration of one system clock cycle in nanoseconds (≈ 0.41667 ns).
pub const NS_PER_CYCLE: f64 = 1.0 / CPU_FREQ_GHZ;

/// Convert a nanosecond latency into system cycles, rounding up so that a
/// quoted hardware latency is never under-modelled.
#[inline]
pub fn ns_to_cycles(ns: f64) -> Cycle {
    crate::narrow::trunc_u64((ns * CPU_FREQ_GHZ).ceil())
}

/// Convert a cycle count back into nanoseconds.
#[inline]
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 * NS_PER_CYCLE
}

/// Convert an already-fractional cycle quantity (a histogram mean or
/// percentile) into nanoseconds. Same arithmetic as [`cycles_to_ns`],
/// for callers whose cycle value left the integer domain upstream.
#[inline]
pub fn cycles_f64_to_ns(frac_cycles: f64) -> f64 {
    frac_cycles * NS_PER_CYCLE
}

/// Convert a GB/s bandwidth figure into bytes per cycle. GB/s is
/// bytes/ns, so this is the same factor as [`cycles_to_ns`] — kept here
/// so rate math never re-derives the clock in place.
#[inline]
pub fn gbs_to_bytes_per_cycle(gbs: f64) -> f64 {
    gbs * NS_PER_CYCLE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_is_sub_nanosecond() {
        let ns = std::hint::black_box(NS_PER_CYCLE);
        assert!(ns > 0.41 && ns < 0.42);
    }

    #[test]
    fn ns_conversion_rounds_up() {
        // 12.5 ns (one CXL port crossing) = exactly 30 cycles.
        assert_eq!(ns_to_cycles(12.5), 30);
        // 1 ns does not fit in 2 cycles (0.833 ns); it needs 3.
        assert_eq!(ns_to_cycles(1.0), 3);
        assert_eq!(ns_to_cycles(0.0), 0);
    }

    #[test]
    fn round_trip_error_is_below_one_cycle() {
        for ns in [0.5, 1.0, 12.5, 50.0, 70.0, 123.456] {
            let c = ns_to_cycles(ns);
            let back = cycles_to_ns(c);
            assert!(back >= ns - 1e-9, "{back} < {ns}");
            assert!(back - ns < NS_PER_CYCLE + 1e-9);
        }
    }
}
