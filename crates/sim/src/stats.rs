//! Statistics primitives — re-exported from `coaxial-telemetry`.
//!
//! [`Histogram`] and [`MeanTracker`] used to live here; they moved to
//! `coaxial-telemetry` (the canonical implementation, shared with the
//! latency-attribution pipeline) and this module re-exports them so every
//! existing `coaxial_sim::stats::Histogram` import keeps working. The types
//! are identical — not copies — so histograms cross the crate boundary
//! freely.

pub use coaxial_telemetry::stats::{Histogram, MeanTracker};

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-export must be the telemetry crate's type, not a fork: a
    /// histogram produced here merges with one produced there.
    #[test]
    fn reexport_is_the_telemetry_type() {
        let mut ours = Histogram::new();
        ours.record(10);
        let mut theirs = coaxial_telemetry::Histogram::new();
        theirs.record(30);
        ours.merge(&theirs);
        assert_eq!(ours.count(), 2);
        assert_eq!(ours.max(), 30);

        let mut m: MeanTracker = coaxial_telemetry::MeanTracker::new();
        m.record(4.0);
        assert_eq!(m.count(), 1);
    }
}
