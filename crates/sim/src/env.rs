//! Environment-variable knobs shared across the workspace.
//!
//! Every binary, bench, and test honours the same small set of `COAXIAL_*`
//! variables; this module is the single place that parses them so the
//! semantics (and the defaults) cannot drift between crates.
//!
//! | Variable          | Meaning                                            |
//! |-------------------|----------------------------------------------------|
//! | `COAXIAL_INSTR`   | instructions per core in the measured region       |
//! | `COAXIAL_WARMUP`  | instructions per core of cache/DRAM warmup         |
//! | `COAXIAL_JOBS`    | worker threads for the parallel experiment runner  |
//! | `COAXIAL_SKIP`    | `off`/`0`/`false` disables hot-loop cycle skipping |
//! | `COAXIAL_ENGINE`  | run-loop engine: `event` (default) or `lockstep`   |
//! | `COAXIAL_DEBUG`   | end-of-run engine diagnostics on stderr            |
//! | `COAXIAL_PREFILL_CACHE_MB` | byte budget (MB) for each cross-run prefill cache |
//! | `COAXIAL_CHECKPOINT_DIR` | disk tier for the post-prefill checkpoint store |
//! | `COAXIAL_F2A_CYCLES` | fig2a bench: simulated cycles per load-latency point |
//! | `COAXIAL_F6_WEIGHTED` | fig6 bench: also emit the weighted-speedup column |
//! | `COAXIAL_F7_ALL` | fig7 bench: average over all workloads, not the subset |
//! | `COAXIAL_SAMPLING` | enable SMARTS-style interval sampling for `coaxial run` |
//! | `COAXIAL_SAMPLING_INTERVALS` | measurement intervals per sampled run (default 10) |
//! | `COAXIAL_SAMPLING_MEASURE` | measured instructions per core per interval (default 2000) |
//! | `COAXIAL_SAMPLING_WARM` | detailed warm-up instructions per core per interval (default 2000) |
//! | `COAXIAL_SAMPLING_CI` | relative CI half-width target for early stopping (0 = off) |
//!
//! The gateway's `COAXIAL_GATEWAY_*` family is documented in
//! `crates/gateway/src/lib.rs` next to the code that parses it.

/// Read a `u64` from the environment, falling back to `default` when the
/// variable is unset or unparsable.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Read a boolean flag from the environment. Unset means `default`;
/// `0`, `off`, `false`, and `no` (case-insensitive) mean `false`; anything
/// else present means `true`.
pub fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false" | "no"),
        Err(_) => default,
    }
}

/// Read an `f64` from the environment, falling back to `default` when the
/// variable is unset or unparsable. Non-finite values are rejected so a
/// stray `inf`/`nan` cannot poison deterministic arithmetic downstream.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| v.is_finite())
        .unwrap_or(default)
}

/// Whether `coaxial run` executes in SMARTS-style interval-sampling mode
/// (`COAXIAL_SAMPLING`, off by default). Sampling is an explicit opt-in —
/// never inferred — because sampled and full-detail reports are different
/// estimators of the same workload and must not be served interchangeably
/// from result caches.
pub fn sampling() -> bool {
    env_flag("COAXIAL_SAMPLING", false)
}

/// Number of measurement intervals a sampled run is planned to take
/// (`COAXIAL_SAMPLING_INTERVALS`, default 10, clamped to ≥1). CI-based
/// early stopping may run fewer; see [`sampling_ci_target`].
pub fn sampling_intervals(default: u64) -> u64 {
    env_u64("COAXIAL_SAMPLING_INTERVALS", default).max(1)
}

/// Measured instructions per core inside each detailed interval
/// (`COAXIAL_SAMPLING_MEASURE`, default 2000, clamped to ≥1).
pub fn sampling_measure(default: u64) -> u64 {
    env_u64("COAXIAL_SAMPLING_MEASURE", default).max(1)
}

/// Detailed warm-up instructions per core run before each measurement
/// interval to re-warm timing state (MSHRs, queues, DRAM row state) after a
/// functional fast-forward (`COAXIAL_SAMPLING_WARM`, default 2000; 0 is
/// legal and measures cold).
pub fn sampling_warm(default: u64) -> u64 {
    env_u64("COAXIAL_SAMPLING_WARM", default)
}

/// Relative CI half-width target for early stopping
/// (`COAXIAL_SAMPLING_CI`, default 0.0 = disabled). When positive, a
/// sampled run stops after any interval ≥ 3 whose aggregate IPC
/// half-width / mean falls at or below this value. Negative values are
/// clamped to 0 (disabled).
pub fn sampling_ci_target() -> f64 {
    env_f64("COAXIAL_SAMPLING_CI", 0.0).max(0.0)
}

/// Instructions per core in the measured region (`COAXIAL_INSTR`).
pub fn instructions(default: u64) -> u64 {
    env_u64("COAXIAL_INSTR", default)
}

/// Warmup instructions per core (`COAXIAL_WARMUP`).
pub fn warmup(default: u64) -> u64 {
    env_u64("COAXIAL_WARMUP", default)
}

/// Worker-thread count for the parallel experiment runner (`COAXIAL_JOBS`);
/// defaults to the host's available parallelism.
pub fn jobs() -> usize {
    let default = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    crate::narrow::idx(env_u64("COAXIAL_JOBS", default as u64).max(1))
}

/// Whether the simulation driver may fast-forward quiescent cycles
/// (`COAXIAL_SKIP`, on by default).
pub fn cycle_skip() -> bool {
    env_flag("COAXIAL_SKIP", true)
}

/// Raw run-loop engine selection (`COAXIAL_ENGINE`), lowercased; `None`
/// when unset. The simulation driver maps `"event"` (the default) and
/// `"lockstep"` (the differential-testing oracle) to engines and rejects
/// anything else, so a typo cannot silently fall back.
pub fn engine_name() -> Option<String> {
    std::env::var("COAXIAL_ENGINE").ok().map(|v| v.to_ascii_lowercase())
}

/// Whether to print end-of-run engine diagnostics — skip percentages,
/// prefill vs. loop wall time — on stderr (`COAXIAL_DEBUG`, off by
/// default). Diagnostics never touch simulated state or reports; the
/// machine-readable equivalents live in the metrics registry under
/// `engine.*`.
pub fn debug() -> bool {
    env_flag("COAXIAL_DEBUG", false)
}

/// Byte budget, in MB, for *each* of the simulation driver's cross-run
/// prefill caches — warmed cache state and generated access streams
/// (`COAXIAL_PREFILL_CACHE_MB`, default 64).
///
/// The default is deliberately modest: the prefill loop is host-memory-
/// bound, and retaining hundreds of MB of cold cache entries measurably
/// slows it (the `sim_throughput` sweep regresses ~40 % at a 256 MB
/// budget from heap-locality loss alone). 64 MB holds roughly 8–16
/// warmed states — plenty for interleaved parallel schedules — while
/// keeping the resident set close to the one-entry behaviour.
///
/// Budgets above 128 MB are legal but the simulation driver warns once
/// (stderr + `server.checkpoint.budget_over_cliff` in the registry): the
/// measured sweep showed throughput flat from 32–128 MB and falling past
/// that, with the full ~40 % cliff at 256 MB, so more than 128 MB only
/// buys slowdown. Prefer `COAXIAL_CHECKPOINT_DIR` for large retained sets
/// — the disk tier holds unlimited warmed states without touching the
/// prefill loop's working set.
pub fn prefill_cache_mb() -> u64 {
    env_u64("COAXIAL_PREFILL_CACHE_MB", 64)
}

/// Optional directory for the checkpoint store's disk tier
/// (`COAXIAL_CHECKPOINT_DIR`). When set and non-empty, every freshly
/// warmed post-prefill state is also written there (atomic temp-file +
/// rename, content-addressed by functional-config hash) and later runs —
/// including other processes and future invocations — restore it instead
/// of re-simulating prefill. Unset or empty disables the tier; disk I/O
/// errors are counted (`server.checkpoint.disk_errors`), never fatal.
pub fn checkpoint_dir() -> Option<std::path::PathBuf> {
    match std::env::var("COAXIAL_CHECKPOINT_DIR") {
        Ok(v) if !v.is_empty() => Some(std::path::PathBuf::from(v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_pass_through() {
        assert_eq!(env_u64("COAXIAL_TEST_UNSET_VAR", 42), 42);
        assert!(env_flag("COAXIAL_TEST_UNSET_VAR", true));
        assert!(!env_flag("COAXIAL_TEST_UNSET_VAR", false));
    }

    #[test]
    fn parses_set_values() {
        // Serialized onto unique var names: tests in one binary share the
        // process environment.
        std::env::set_var("COAXIAL_TEST_ENV_U64", "123");
        assert_eq!(env_u64("COAXIAL_TEST_ENV_U64", 7), 123);
        std::env::set_var("COAXIAL_TEST_ENV_U64", "not-a-number");
        assert_eq!(env_u64("COAXIAL_TEST_ENV_U64", 7), 7);

        for off in ["0", "off", "FALSE", "no"] {
            std::env::set_var("COAXIAL_TEST_ENV_FLAG", off);
            assert!(!env_flag("COAXIAL_TEST_ENV_FLAG", true));
        }
        std::env::set_var("COAXIAL_TEST_ENV_FLAG", "on");
        assert!(env_flag("COAXIAL_TEST_ENV_FLAG", false));
    }

    #[test]
    fn env_f64_rejects_garbage_and_non_finite() {
        assert_eq!(env_f64("COAXIAL_TEST_UNSET_VAR", 0.25), 0.25);
        std::env::set_var("COAXIAL_TEST_ENV_F64", "0.05");
        assert_eq!(env_f64("COAXIAL_TEST_ENV_F64", 1.0), 0.05);
        std::env::set_var("COAXIAL_TEST_ENV_F64", "inf");
        assert_eq!(env_f64("COAXIAL_TEST_ENV_F64", 1.0), 1.0, "non-finite falls back");
        std::env::set_var("COAXIAL_TEST_ENV_F64", "not-a-number");
        assert_eq!(env_f64("COAXIAL_TEST_ENV_F64", 1.0), 1.0);
        std::env::remove_var("COAXIAL_TEST_ENV_F64");
    }

    #[test]
    fn checkpoint_dir_empty_means_disabled() {
        // checkpoint_dir() reads a fixed name, so this test owns it; no
        // other test in this binary touches COAXIAL_CHECKPOINT_DIR.
        std::env::remove_var("COAXIAL_CHECKPOINT_DIR");
        assert_eq!(checkpoint_dir(), None);
        std::env::set_var("COAXIAL_CHECKPOINT_DIR", "");
        assert_eq!(checkpoint_dir(), None, "empty value disables the tier");
        std::env::set_var("COAXIAL_CHECKPOINT_DIR", "/tmp/ckpt");
        assert_eq!(checkpoint_dir(), Some(std::path::PathBuf::from("/tmp/ckpt")));
        std::env::remove_var("COAXIAL_CHECKPOINT_DIR");
    }
}
