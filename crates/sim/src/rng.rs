//! Deterministic pseudo-random number generation.
//!
//! All stochastic behaviour in the simulator (workload address streams,
//! CALM probabilistic decisions, arrival processes) draws from
//! [`SplitMix64`], a tiny, fast, well-distributed generator. A fixed seed
//! makes every (workload, configuration) run bit-reproducible, which the
//! test suite and the paper-reproduction benches rely on.

/// SplitMix64 PRNG (Steele, Lea & Flood; public-domain reference algorithm).
///
/// Passes BigCrush when used as a 64-bit stream; more than adequate for
/// driving workload generators and Bernoulli decisions.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds give independent
    /// streams for practical purposes.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self {
            // Avoid the all-zero fixed point pitfall of weaker mixers by
            // pre-advancing once.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply technique (Lemire); the modulo bias is at
    /// most 2⁻⁶⁴·bound, irrelevant at simulation scales.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Sample an exponential inter-arrival gap with the given mean, in the
    /// same unit as `mean`. Used for Poisson arrival processes (Fig. 2a).
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; guard against ln(0).
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Fork an independent generator, e.g. one per core, from this stream.
    #[inline]
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// The raw internal state, for checkpointing a generator mid-stream.
    /// Pair with [`SplitMix64::from_state`]; the value is *not* a seed
    /// (`new` pre-advances), so never feed it back through `new`.
    #[inline]
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator at an exact point in its stream from a value
    /// previously returned by [`SplitMix64::state`].
    #[inline]
    #[must_use]
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_of_uniform_is_near_half() {
        let mut rng = SplitMix64::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SplitMix64::new(13);
        let n = 100_000;
        let target = 37.5;
        let sum: f64 = (0..n).map(|_| rng.next_exp(target)).sum();
        let mean = sum / n as f64;
        assert!((mean - target).abs() / target < 0.03, "mean = {mean}");
    }

    #[test]
    fn chance_frequency_tracks_probability() {
        let mut rng = SplitMix64::new(17);
        let n = 100_000u32;
        let hits = (0..n).filter(|_| rng.chance(0.3)).count() as f64;
        let freq = hits / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq = {freq}");
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SplitMix64::new(33);
        for _ in 0..57 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = SplitMix64::new(21);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
