//! Bounded FIFO queue with occupancy accounting, and the deterministic
//! event min-queue that drives the per-core event-driven engine.
//!
//! Every buffering point in the memory system (DDR read/write queues, CXL
//! controller message queues, MSHR overflow paths) is a [`BoundedQueue`].
//! Back-pressure — a full queue refusing a new entry — is how queuing delay
//! propagates upstream, which is the central mechanism of the paper's
//! load-latency analysis (Fig. 2a).
//!
//! [`EventQueue`] is the scheduling heart of the event-driven run loop in
//! `coaxial-system`: every component (each core, plus the memory hierarchy)
//! owns one slot, reports the cycle of its next self-wakeup, and the engine
//! advances directly to the earliest reported event instead of probing all
//! components every cycle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Cycle;

/// Fixed-capacity FIFO. Rejects pushes beyond capacity rather than growing,
/// so producers observe back-pressure.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Σ occupancy over all `tick_stats` calls, for mean-occupancy reporting.
    occupancy_sum: u64,
    ticks: u64,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self { items: VecDeque::with_capacity(capacity), capacity, occupancy_sum: 0, ticks: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Push an item; returns it back on failure (queue full).
    #[inline]
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Iterate entries front-to-back (used by FR-FCFS scans).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Remove and return the element at `index` (FR-FCFS picks row hits out
    /// of order).
    pub fn remove(&mut self, index: usize) -> Option<T> {
        self.items.remove(index)
    }

    /// Record current occupancy; call once per simulated cycle.
    #[inline]
    pub fn tick_stats(&mut self) {
        self.occupancy_sum += self.items.len() as u64;
        self.ticks += 1;
    }

    /// Mean occupancy across all `tick_stats` calls.
    pub fn mean_occupancy(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.ticks as f64
        }
    }
}

/// Deterministic min-queue of per-component wakeup times.
///
/// Each component registered at construction owns exactly one slot: calling
/// [`EventQueue::schedule`] replaces the component's previous event rather
/// than accumulating entries. [`EventQueue::peek`]/[`EventQueue::pop`]
/// return the earliest scheduled `(cycle, component)` pair, breaking cycle
/// ties by the **fixed component index** (lowest first) — never by
/// insertion order or heap internals — so an engine driven by this queue
/// visits components in a reproducible order and sweep outputs stay
/// bit-identical at any parallelism width.
///
/// Implementation: a binary heap of `Reverse((cycle, component))` pairs
/// with lazy invalidation. `schedule` pushes a fresh pair and records it as
/// the component's single live event; superseded heap residue is discarded
/// when it surfaces at the top. `Cycle::MAX` is reserved to mean "no event"
/// and is not a schedulable time.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// `live[c]` = component `c`'s single live event time (`MAX` = none).
    live: Vec<Cycle>,
}

impl EventQueue {
    /// A queue for components indexed `0..components`.
    pub fn new(components: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(components + 1), live: vec![Cycle::MAX; components] }
    }

    /// Number of component slots.
    pub fn components(&self) -> usize {
        self.live.len()
    }

    /// Schedule (or move) `component`'s next event to cycle `at`,
    /// replacing any previously scheduled event.
    pub fn schedule(&mut self, component: usize, at: Cycle) {
        assert!(at != Cycle::MAX, "Cycle::MAX means 'no scheduled event'");
        if self.live[component] != at {
            self.live[component] = at;
            self.heap.push(Reverse((at, crate::narrow::small_u32(component))));
        }
    }

    /// Drop `component`'s scheduled event, if any.
    pub fn cancel(&mut self, component: usize) {
        self.live[component] = Cycle::MAX;
    }

    /// The cycle `component` is currently scheduled for, if any.
    pub fn scheduled_at(&self, component: usize) -> Option<Cycle> {
        let at = self.live[component];
        (at != Cycle::MAX).then_some(at)
    }

    /// Earliest scheduled `(cycle, component)`; ties broken by lowest
    /// component index. Takes `&mut self` to garbage-collect superseded
    /// heap residue as it surfaces.
    pub fn peek(&mut self) -> Option<(Cycle, usize)> {
        while let Some(&Reverse((at, c))) = self.heap.peek() {
            let c = c as usize;
            if self.live[c] == at {
                return Some((at, c));
            }
            self.heap.pop();
        }
        None
    }

    /// Remove and return the earliest scheduled `(cycle, component)`.
    pub fn pop(&mut self) -> Option<(Cycle, usize)> {
        let (at, c) = self.peek()?;
        self.heap.pop();
        self.live[c] = Cycle::MAX;
        Some((at, c))
    }

    /// Remove and return the earliest event if it is due at or before
    /// `now`; leave the queue untouched otherwise.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, usize)> {
        match self.peek() {
            Some((at, _)) if at <= now => self.pop(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut q = BoundedQueue::new(2);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push('c'), Err('c'));
        q.pop();
        assert!(q.try_push('c').is_ok());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn remove_out_of_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.remove(2), Some(2));
        assert_eq!(q.len(), 4);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(rest, vec![0, 1, 3, 4]);
    }

    #[test]
    fn occupancy_stats() {
        let mut q = BoundedQueue::new(4);
        q.tick_stats(); // 0
        q.try_push(1).unwrap();
        q.tick_stats(); // 1
        q.try_push(2).unwrap();
        q.tick_stats(); // 2
        assert!((q.mean_occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn event_queue_pops_in_time_order() {
        let mut q = EventQueue::new(4);
        q.schedule(2, 30);
        q.schedule(0, 10);
        q.schedule(1, 20);
        assert_eq!(q.pop(), Some((10, 0)));
        assert_eq!(q.pop(), Some((20, 1)));
        assert_eq!(q.pop(), Some((30, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn event_queue_breaks_ties_by_component_index() {
        // Schedule in descending-index order so heap insertion order would
        // disagree with the contract if ties were broken structurally.
        let mut q = EventQueue::new(5);
        for c in (0..5).rev() {
            q.schedule(c, 7);
        }
        for c in 0..5 {
            assert_eq!(q.pop(), Some((7, c)), "ties must pop lowest index first");
        }
    }

    #[test]
    fn event_queue_reschedule_replaces_previous_event() {
        let mut q = EventQueue::new(2);
        q.schedule(0, 50);
        q.schedule(1, 40);
        q.schedule(0, 10); // move earlier
        assert_eq!(q.scheduled_at(0), Some(10));
        assert_eq!(q.pop(), Some((10, 0)));
        // The superseded (50, 0) residue must not resurface.
        assert_eq!(q.pop(), Some((40, 1)));
        assert_eq!(q.pop(), None);

        q.schedule(0, 10);
        q.schedule(0, 90); // move later
        assert_eq!(q.peek(), Some((90, 0)));
    }

    #[test]
    fn event_queue_cancel_removes_component() {
        let mut q = EventQueue::new(2);
        q.schedule(0, 5);
        q.schedule(1, 6);
        q.cancel(0);
        assert_eq!(q.scheduled_at(0), None);
        assert_eq!(q.pop(), Some((6, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn event_queue_pop_due_respects_now() {
        let mut q = EventQueue::new(3);
        q.schedule(0, 12);
        q.schedule(1, 10);
        q.schedule(2, 11);
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.pop_due(11), Some((10, 1)));
        assert_eq!(q.pop_due(11), Some((11, 2)));
        assert_eq!(q.pop_due(11), None, "event at 12 is not yet due");
        assert_eq!(q.pop_due(12), Some((12, 0)));
    }

    #[test]
    fn event_queue_is_deterministic_under_churn() {
        // The same final schedule reached through different reschedule
        // histories drains identically: the drain order is a function of
        // the live schedule alone, not of heap residue.
        let mut a = EventQueue::new(4);
        a.schedule(3, 9);
        a.schedule(1, 9);
        a.schedule(0, 4);
        a.schedule(1, 2); // moved earlier
        a.schedule(2, 9);
        let mut b = EventQueue::new(4);
        b.schedule(2, 9);
        b.schedule(1, 2);
        b.schedule(0, 7);
        b.schedule(0, 4); // moved earlier
        b.schedule(3, 3);
        b.schedule(3, 9); // moved later
        let drain = |q: &mut EventQueue| std::iter::from_fn(|| q.pop()).collect::<Vec<_>>();
        let want = vec![(2, 1), (4, 0), (9, 2), (9, 3)];
        assert_eq!(drain(&mut a), want);
        assert_eq!(drain(&mut b), want);
    }
}
