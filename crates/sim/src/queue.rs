//! Bounded FIFO queue with occupancy accounting.
//!
//! Every buffering point in the memory system (DDR read/write queues, CXL
//! controller message queues, MSHR overflow paths) is a [`BoundedQueue`].
//! Back-pressure — a full queue refusing a new entry — is how queuing delay
//! propagates upstream, which is the central mechanism of the paper's
//! load-latency analysis (Fig. 2a).

use std::collections::VecDeque;

/// Fixed-capacity FIFO. Rejects pushes beyond capacity rather than growing,
/// so producers observe back-pressure.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Σ occupancy over all `tick_stats` calls, for mean-occupancy reporting.
    occupancy_sum: u64,
    ticks: u64,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self { items: VecDeque::with_capacity(capacity), capacity, occupancy_sum: 0, ticks: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Push an item; returns it back on failure (queue full).
    #[inline]
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Iterate entries front-to-back (used by FR-FCFS scans).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Remove and return the element at `index` (FR-FCFS picks row hits out
    /// of order).
    pub fn remove(&mut self, index: usize) -> Option<T> {
        self.items.remove(index)
    }

    /// Record current occupancy; call once per simulated cycle.
    #[inline]
    pub fn tick_stats(&mut self) {
        self.occupancy_sum += self.items.len() as u64;
        self.ticks += 1;
    }

    /// Mean occupancy across all `tick_stats` calls.
    pub fn mean_occupancy(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.ticks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn rejects_when_full() {
        let mut q = BoundedQueue::new(2);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push('c'), Err('c'));
        q.pop();
        assert!(q.try_push('c').is_ok());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn remove_out_of_order() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.remove(2), Some(2));
        assert_eq!(q.len(), 4);
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(rest, vec![0, 1, 3, 4]);
    }

    #[test]
    fn occupancy_stats() {
        let mut q = BoundedQueue::new(4);
        q.tick_stats(); // 0
        q.try_push(1).unwrap();
        q.tick_stats(); // 1
        q.try_push(2).unwrap();
        q.tick_stats(); // 2
        assert!((q.mean_occupancy() - 1.0).abs() < 1e-12);
    }
}
