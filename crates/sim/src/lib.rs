//! Simulation substrate shared by every COAXIAL model crate.
//!
//! The whole system is simulated on a single 2.4 GHz clock (one tick =
//! 0.41667 ns). DDR5-4800's I/O clock happens to also be 2.4 GHz, so one CPU
//! cycle equals one DRAM clock and no cross-domain synchronization is needed
//! (see DESIGN.md §5).
//!
//! This crate deliberately has no model-specific logic; it provides:
//!
//! * [`time`] — the `Cycle` type and ns⇄cycle conversion at the system clock,
//! * [`rng`] — a tiny, fast, deterministic RNG (`SplitMix64`),
//! * [`stats`] — counters, running means, and latency histograms with
//!   percentile queries (re-exported from `coaxial-telemetry`, the
//!   canonical implementation),
//! * [`lru`] — a byte-bounded keyed LRU (prefill-state memoization),
//! * [`checkpoint`] — the content-addressed snapshot store (memory LRU +
//!   optional disk tier) behind post-prefill state restore,
//! * [`queue`] — bounded FIFO queues that record occupancy statistics, and
//!   the deterministic event min-queue behind the event-driven run loop,
//! * [`sample`] — interval-sample aggregation (mean ± Student-t confidence
//!   interval) behind the SMARTS-style sampled execution mode, and
//! * [`env`] — the shared `COAXIAL_*` environment knobs (budgets, job count,
//!   cycle-skip toggle).

// No unsafe anywhere in this crate (lint U01 audit); keep it that way.
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod env;
pub mod lru;
pub mod narrow;
pub mod queue;
pub mod rng;
pub mod sample;
pub mod stats;
pub mod time;

pub use checkpoint::{CheckpointCounters, CheckpointStore, KeyHasher, Snapshot};
pub use lru::ByteBoundedLru;
pub use narrow::{idx, small_u32, small_u32_u64, trunc_u32, trunc_u64, trunc_usize};
pub use queue::{BoundedQueue, EventQueue};
pub use rng::SplitMix64;
pub use sample::SampleSeries;
pub use stats::{Histogram, MeanTracker};
pub use time::{
    cycles_f64_to_ns, cycles_to_ns, gbs_to_bytes_per_cycle, ns_to_cycles, Cycle, CPU_FREQ_GHZ,
    NS_PER_CYCLE,
};
