//! Content-addressed checkpoint store for warmed functional state.
//!
//! Full-system simulators skip warmup by checkpointing: CXL-DMSim restores
//! gem5 checkpoints before the measured window, and CXLRAMSim separates
//! functional state from timing exploration so one warmed image serves an
//! entire parameter sweep. This module is the COAXIAL equivalent: a store
//! keyed by a canonical 128-bit hash of the *functional* config slice
//! (workloads, seed, core count, cache geometry — see
//! `coaxial-system::config::FunctionalConfig`), so every timing-only
//! sibling of a run (CXL latency, DRAM grade, prefetch distance, CALM
//! policy) restores the same snapshot instead of re-simulating prefill.
//!
//! Two tiers:
//!
//! * **memory** — a [`ByteBoundedLru`] of decoded `Arc<V>` values, bounded
//!   by the caller's byte budget (`COAXIAL_PREFILL_CACHE_MB`);
//! * **disk** (optional) — one file per key under `COAXIAL_CHECKPOINT_DIR`,
//!   written atomically (temp file + rename), so warmed state survives
//!   process restarts and is shared between concurrent processes.
//!
//! Values implement [`Snapshot`]: a hand-rolled little-endian codec (no
//! serde — the container is offline and the payloads are flat `u64`/`u8`
//! arrays that `chunks_exact` decodes at memcpy speed). Disk problems are
//! never fatal: every I/O error just counts in `disk_errors` and the store
//! degrades to memory-only behaviour.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::lru::ByteBoundedLru;

/// File magic for checkpoint files; bump the trailing version digit on any
/// encoding change so stale files from older builds miss instead of
/// decoding garbage.
const MAGIC: &[u8; 8] = b"CXCKPT01";

/// A value that can round-trip through the checkpoint store's disk tier.
pub trait Snapshot: Sized {
    /// Append the canonical little-endian encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode a value previously produced by [`Snapshot::encode`].
    /// Returns `None` on any structural mismatch (truncation, bad counts);
    /// callers treat that as a cache miss, never an error.
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// Incremental FNV-1a (128-bit) over a canonical field encoding.
///
/// Used to derive the content address of a functional config slice. Each
/// write is length- or tag-prefixed by the caller conventions below, so
/// distinct field sequences cannot collide by concatenation (e.g. the
/// string split `"ab","c"` vs `"a","bc"` hashes differently because
/// [`KeyHasher::write_str`] prefixes the length).
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl KeyHasher {
    /// Start a hash seeded with a domain tag, so the same field values
    /// hashed for different purposes (state vs stream keys) cannot alias.
    #[must_use]
    pub fn new(domain: &str) -> Self {
        let mut h = Self { state: FNV128_OFFSET };
        h.write_str(domain);
        h
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= u128::from(b);
            s = s.wrapping_mul(FNV128_PRIME);
        }
        self.state = s;
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Length-prefixed string write (prefix keeps concatenations distinct).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// Little-endian encode/decode helpers shared by [`Snapshot`] impls.
///
/// The format is deliberately dumb: every integer is a `u64`, every array
/// is a `u64` count followed by raw little-endian words. `chunks_exact(8)`
/// plus `u64::from_le_bytes` decodes at close to memcpy speed and needs no
/// unsafe, no external crates, and no per-element branching.
pub mod codec {
    /// Append one `u64`.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a count-prefixed `u64` slice.
    pub fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
        put_u64(out, vs.len() as u64);
        for &v in vs {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a count-prefixed byte slice (no padding; reader re-aligns).
    pub fn put_bytes(out: &mut Vec<u8>, bs: &[u8]) {
        put_u64(out, bs.len() as u64);
        out.extend_from_slice(bs);
    }

    /// Sequential reader over an encoded payload. Every accessor returns
    /// `None` past the end, so truncated input surfaces as a decode miss
    /// rather than a panic.
    #[derive(Debug)]
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        #[must_use]
        pub fn new(buf: &'a [u8]) -> Self {
            Self { buf, pos: 0 }
        }

        pub fn u64(&mut self) -> Option<u64> {
            let end = self.pos.checked_add(8)?;
            let chunk = self.buf.get(self.pos..end)?;
            self.pos = end;
            Some(u64::from_le_bytes(chunk.try_into().ok()?))
        }

        /// Count-prefixed `u64` array (see [`put_u64s`]).
        pub fn u64s(&mut self) -> Option<Vec<u64>> {
            let n = usize::try_from(self.u64()?).ok()?;
            let end = self.pos.checked_add(n.checked_mul(8)?)?;
            let raw = self.buf.get(self.pos..end)?;
            self.pos = end;
            let mut out = Vec::with_capacity(n);
            out.extend(
                raw.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
            );
            Some(out)
        }

        /// Count-prefixed byte array (see [`put_bytes`]).
        pub fn bytes(&mut self) -> Option<&'a [u8]> {
            let n = usize::try_from(self.u64()?).ok()?;
            let end = self.pos.checked_add(n)?;
            let raw = self.buf.get(self.pos..end)?;
            self.pos = end;
            Some(raw)
        }

        /// True once the whole payload has been consumed; decoders check
        /// this last so trailing garbage is rejected.
        #[must_use]
        pub fn done(&self) -> bool {
            self.pos == self.buf.len()
        }
    }
}

/// Counters snapshot for metrics export (one struct so callers cannot
/// read the fields in an inconsistent interleaving).
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointCounters {
    /// Hits served from the in-memory LRU.
    pub mem_hits: u64,
    /// Hits served by decoding a disk-tier file (then promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing in either tier.
    pub misses: u64,
    /// Successful `insert` calls.
    pub inserts: u64,
    /// Memory-tier evictions (the disk tier, when enabled, still holds
    /// evicted entries — see the eviction test).
    pub evictions: u64,
    /// Non-fatal disk-tier I/O or decode failures.
    pub disk_errors: u64,
    /// Entries currently resident in memory.
    pub entries: u64,
    /// Caller-accounted bytes currently resident in memory.
    pub bytes: u64,
}

/// Content-addressed store: byte-bounded memory tier over an optional
/// disk tier. Keys are canonical [`KeyHasher`] digests; values are shared
/// out as `Arc` so concurrent runs with the same functional slice alias
/// one decoded snapshot.
#[derive(Debug)]
pub struct CheckpointStore<V> {
    mem: ByteBoundedLru<u128, Arc<V>>,
    disk: Option<PathBuf>,
    /// File-name prefix; also distinguishes stores sharing one directory.
    prefix: &'static str,
    disk_hits: u64,
    disk_errors: u64,
    inserts: u64,
}

impl<V: Snapshot> CheckpointStore<V> {
    #[must_use]
    pub fn new(budget_bytes: u64, disk: Option<PathBuf>, prefix: &'static str) -> Self {
        Self {
            mem: ByteBoundedLru::new(budget_bytes),
            disk,
            prefix,
            disk_hits: 0,
            disk_errors: 0,
            inserts: 0,
        }
    }

    fn file_path(&self, key: u128) -> Option<PathBuf> {
        self.disk.as_ref().map(|d| d.join(format!("{}-{key:032x}.ckpt", self.prefix)))
    }

    /// Look up `key`: memory tier first, then disk (decoding promotes the
    /// entry back into memory, accounted at its encoded size).
    pub fn get(&mut self, key: u128) -> Option<Arc<V>> {
        if let Some(v) = self.mem.get(&key) {
            return Some(Arc::clone(v));
        }
        let path = self.file_path(key)?;
        let decoded = match fs::read(&path) {
            Ok(raw) => decode_file::<V>(&raw, key),
            // A missing file is the normal cold-store case, not an error.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.disk_errors += 1;
                return None;
            }
        };
        let Some((value, encoded_len)) = decoded else {
            self.disk_errors += 1;
            return None;
        };
        self.disk_hits += 1;
        let value = Arc::new(value);
        self.mem.insert(key, Arc::clone(&value), encoded_len);
        Some(value)
    }

    /// Insert a snapshot under `key`. `bytes` is the caller's in-memory
    /// size estimate for LRU accounting. The disk tier is written only if
    /// the file does not already exist (content-addressed: same key ⇒
    /// same payload, so rewriting is wasted I/O).
    pub fn insert(&mut self, key: u128, value: Arc<V>, bytes: u64) {
        self.inserts += 1;
        if let Some(path) = self.file_path(key) {
            if !path.exists() {
                if let Err(_e) = self.write_file(&path, key, &value) {
                    self.disk_errors += 1;
                }
            }
        }
        self.mem.insert(key, value, bytes);
    }

    fn write_file(&self, path: &Path, key: u128, value: &V) -> std::io::Result<()> {
        let dir = path.parent().expect("checkpoint file path has a parent dir");
        fs::create_dir_all(dir)?;
        let mut payload = Vec::with_capacity(32);
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&key.to_le_bytes());
        value.encode(&mut payload);
        // Atomic publish: a concurrent reader sees either no file or the
        // complete file, never a torn write. The temp name carries the pid
        // plus a process-wide sequence number so concurrent writers of the
        // same key cannot collide — two threads in one process would
        // otherwise share a pid-only temp name and truncate each other
        // mid-write, renaming a torn payload into place.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp{}-{seq}", std::process::id()));
        fs::write(&tmp, &payload)?;
        match fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    #[must_use]
    pub fn counters(&self) -> CheckpointCounters {
        CheckpointCounters {
            mem_hits: self.mem.hits(),
            disk_hits: self.disk_hits,
            // The LRU counts a miss whenever memory lacked the key; the
            // ones the disk tier then served are not store-level misses.
            misses: self.mem.misses().saturating_sub(self.disk_hits),
            inserts: self.inserts,
            evictions: self.mem.evictions(),
            disk_errors: self.disk_errors,
            entries: self.mem.len() as u64,
            bytes: self.mem.bytes(),
        }
    }

    /// Whether the disk tier is configured (for diagnostics only).
    #[must_use]
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }
}

/// Validate the header and decode the payload; returns the value and the
/// payload length (used for memory-tier accounting on promotion).
fn decode_file<V: Snapshot>(raw: &[u8], key: u128) -> Option<(V, u64)> {
    let rest = raw.strip_prefix(&MAGIC[..])?;
    let (key_bytes, payload) = rest.split_at_checked(16)?;
    if u128::from_le_bytes(key_bytes.try_into().ok()?) != key {
        return None;
    }
    Some((V::decode(payload)?, payload.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy snapshot: a tagged word vector, enough to exercise the codec,
    /// the disk round-trip, and eviction behaviour.
    #[derive(Debug, PartialEq, Eq)]
    struct Blob {
        tag: u64,
        words: Vec<u64>,
    }

    impl Snapshot for Blob {
        fn encode(&self, out: &mut Vec<u8>) {
            codec::put_u64(out, self.tag);
            codec::put_u64s(out, &self.words);
        }

        fn decode(bytes: &[u8]) -> Option<Self> {
            let mut r = codec::Reader::new(bytes);
            let tag = r.u64()?;
            let words = r.u64s()?;
            r.done().then_some(Self { tag, words })
        }
    }

    fn blob(tag: u64, n: u64) -> Blob {
        Blob { tag, words: (0..n).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag).collect() }
    }

    /// Unique scratch dir per test without wall-clock or randomness
    /// (lint D02): pid + test label.
    fn scratch(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!("coaxial-ckpt-{}-{label}", std::process::id()))
    }

    #[test]
    fn key_hasher_is_order_and_length_sensitive() {
        let mut a = KeyHasher::new("t");
        a.write_str("ab");
        a.write_str("c");
        let mut b = KeyHasher::new("t");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefix keeps splits distinct");

        let mut c = KeyHasher::new("t");
        c.write_u64(1);
        c.write_u64(2);
        let mut d = KeyHasher::new("t");
        d.write_u64(2);
        d.write_u64(1);
        assert_ne!(c.finish(), d.finish());

        assert_ne!(KeyHasher::new("x").finish(), KeyHasher::new("y").finish());
    }

    #[test]
    fn codec_round_trips_and_rejects_truncation() {
        let b = blob(7, 33);
        let mut out = Vec::new();
        b.encode(&mut out);
        assert_eq!(Blob::decode(&out).as_ref(), Some(&b));
        assert!(Blob::decode(&out[..out.len() - 1]).is_none(), "truncated payload rejected");
        let mut trailing = out.clone();
        trailing.push(0);
        assert!(Blob::decode(&trailing).is_none(), "trailing garbage rejected");
    }

    #[test]
    fn memory_tier_hit_and_miss_counting() {
        let mut s: CheckpointStore<Blob> = CheckpointStore::new(1 << 20, None, "t");
        assert!(s.get(1).is_none());
        s.insert(1, Arc::new(blob(1, 4)), 64);
        assert_eq!(s.get(1).unwrap().tag, 1);
        let c = s.counters();
        assert_eq!((c.mem_hits, c.misses, c.inserts, c.entries), (1, 1, 1, 1));
    }

    #[test]
    fn disk_round_trip_across_store_instances() {
        let dir = scratch("roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let b = blob(42, 257);
        {
            let mut s: CheckpointStore<Blob> =
                CheckpointStore::new(1 << 20, Some(dir.clone()), "t");
            s.insert(99, Arc::new(blob(42, 257)), 4096);
            assert_eq!(s.counters().disk_errors, 0, "disk write must succeed");
        }
        // Fresh store, same dir: the entry must come back from disk,
        // byte-identical, and count as a disk hit.
        let mut s2: CheckpointStore<Blob> = CheckpointStore::new(1 << 20, Some(dir.clone()), "t");
        let got = s2.get(99).expect("disk tier serves the entry");
        assert_eq!(*got, b);
        let c = s2.counters();
        assert_eq!((c.disk_hits, c.misses), (1, 0));
        // Promoted to memory: second get is a pure memory hit.
        assert!(s2.get(99).is_some());
        assert_eq!(s2.counters().mem_hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_under_budget_falls_back_to_disk() {
        let dir = scratch("evict");
        let _ = fs::remove_dir_all(&dir);
        // Budget fits two entries; the third insert evicts the LRU.
        let mut s: CheckpointStore<Blob> = CheckpointStore::new(200, Some(dir.clone()), "t");
        s.insert(1, Arc::new(blob(1, 8)), 100);
        s.insert(2, Arc::new(blob(2, 8)), 100);
        s.insert(3, Arc::new(blob(3, 8)), 100);
        let c = s.counters();
        assert_eq!(c.evictions, 1, "budget forced one eviction");
        assert_eq!(c.entries, 2);
        // Key 1 was evicted from memory but survives on disk.
        let got = s.get(1).expect("evicted entry restored from disk tier");
        assert_eq!(*got, blob(1, 8));
        assert_eq!(s.counters().disk_hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_without_disk_is_a_miss() {
        let mut s: CheckpointStore<Blob> = CheckpointStore::new(150, None, "t");
        s.insert(1, Arc::new(blob(1, 4)), 100);
        s.insert(2, Arc::new(blob(2, 4)), 100);
        assert!(s.get(1).is_none(), "memory-only store loses evicted entries");
        assert_eq!(s.counters().misses, 1);
    }

    #[test]
    fn corrupt_disk_entry_counts_error_and_misses() {
        let dir = scratch("corrupt");
        let _ = fs::remove_dir_all(&dir);
        let mut s: CheckpointStore<Blob> = CheckpointStore::new(1 << 20, Some(dir.clone()), "t");
        s.insert(5, Arc::new(blob(5, 4)), 64);
        // Truncate the file behind the store's back, then force a
        // memory miss with a fresh instance.
        let path = dir.join(format!("t-{:032x}.ckpt", 5u128));
        let raw = fs::read(&path).expect("checkpoint file written");
        fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        let mut s2: CheckpointStore<Blob> = CheckpointStore::new(1 << 20, Some(dir.clone()), "t");
        assert!(s2.get(5).is_none());
        assert_eq!(s2.counters().disk_errors, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_in_file_is_rejected() {
        let b = blob(9, 3);
        let mut payload = Vec::new();
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&7u128.to_le_bytes());
        b.encode(&mut payload);
        assert!(decode_file::<Blob>(&payload, 8).is_none(), "key echo mismatch rejected");
        assert_eq!(decode_file::<Blob>(&payload, 7).map(|(v, _)| v), Some(b));
    }
}
