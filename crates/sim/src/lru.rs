//! A keyed LRU cache bounded by (caller-accounted) bytes.
//!
//! Used for the prefill state/stream memos in `coaxial-system`: entries are
//! few but individually large (a warmed cache image per configuration), so
//! the cache evicts by total byte budget rather than entry count, and the
//! recency bookkeeping is a simple monotonic stamp with an O(n) eviction
//! scan — n is single digits in practice. The map is a `BTreeMap` so the
//! scan's iteration order (and therefore eviction under stamp ties) is
//! deterministic (lint D01).
//!
//! The cache always retains the most recently inserted entry even if it
//! alone exceeds the budget; this preserves the memoization behaviour of
//! the one-entry caches it replaces (the current run can always reuse its
//! own warmup).

use std::collections::BTreeMap;

#[derive(Debug)]
struct Entry<V> {
    value: V,
    bytes: u64,
    stamp: u64,
}

/// Keyed LRU bounded by total bytes, with hit/miss/eviction counters.
///
/// Backed by a `BTreeMap` (not `HashMap`): the eviction scan iterates the
/// map, and lint D01 requires iteration on state-feeding paths to have a
/// deterministic order — with ordered keys, stamp ties always evict the
/// smallest key instead of whichever the hasher visits first.
#[derive(Debug)]
pub struct ByteBoundedLru<K: Ord + Clone, V> {
    map: BTreeMap<K, Entry<V>>,
    max_bytes: u64,
    cur_bytes: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Ord + Clone, V> ByteBoundedLru<K, V> {
    pub fn new(max_bytes: u64) -> Self {
        Self {
            map: BTreeMap::new(),
            max_bytes,
            cur_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, bumping its recency. Counts a hit or a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(key) {
            Some(e) => {
                e.stamp = clock;
                self.hits += 1;
                Some(&e.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Remove and return `key`'s value (the take/re-insert pattern for
    /// entries that must be mutated exclusively). Counts a hit or a miss.
    pub fn take(&mut self, key: &K) -> Option<V> {
        match self.map.remove(key) {
            Some(e) => {
                self.cur_bytes -= e.bytes;
                self.hits += 1;
                Some(e.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `value` under `key` with the given byte cost, then evict
    /// least-recently-used entries until within budget. The entry just
    /// inserted is never evicted, so the cache always holds at least one.
    pub fn insert(&mut self, key: K, value: V, bytes: u64) {
        self.clock += 1;
        if let Some(old) = self.map.insert(key, Entry { value, bytes, stamp: self.clock }) {
            self.cur_bytes -= old.bytes;
        }
        self.cur_bytes += bytes;
        // Stamps are unique (the clock bumps on every touch), so the entry
        // just inserted holds the maximum stamp and `min_by_key` can never
        // select it while more than one entry remains.
        while self.cur_bytes > self.max_bytes && self.map.len() > 1 {
            let victim = self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone());
            match victim {
                Some(v) => {
                    let e = self.map.remove(&v).expect("victim present");
                    self.cur_bytes -= e.bytes;
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total accounted bytes currently resident.
    pub fn bytes(&self) -> u64 {
        self.cur_bytes
    }

    pub fn max_bytes(&self) -> u64 {
        self.max_bytes
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counting() {
        let mut c: ByteBoundedLru<u32, &str> = ByteBoundedLru::new(100);
        assert!(c.get(&1).is_none());
        c.insert(1, "a", 10);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used_by_bytes() {
        let mut c: ByteBoundedLru<u32, u32> = ByteBoundedLru::new(30);
        c.insert(1, 100, 10);
        c.insert(2, 200, 10);
        c.insert(3, 300, 10);
        assert_eq!(c.len(), 3);
        c.get(&1); // 2 becomes LRU
        c.insert(4, 400, 10);
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&2).is_none(), "LRU entry evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&4).is_some());
        assert_eq!(c.bytes(), 30);
    }

    #[test]
    fn oversized_entry_still_cached() {
        let mut c: ByteBoundedLru<u32, u32> = ByteBoundedLru::new(10);
        c.insert(1, 100, 50);
        assert_eq!(c.len(), 1, "most recent entry always retained");
        c.insert(2, 200, 60);
        assert_eq!(c.len(), 1, "old entry evicted for the new one");
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.bytes(), 60);
    }

    #[test]
    fn take_removes_and_counts() {
        let mut c: ByteBoundedLru<u32, String> = ByteBoundedLru::new(100);
        c.insert(1, "x".into(), 40);
        assert_eq!(c.take(&1), Some("x".into()));
        assert_eq!(c.bytes(), 0);
        assert!(c.take(&1).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn reinsert_same_key_replaces_bytes() {
        let mut c: ByteBoundedLru<u32, u32> = ByteBoundedLru::new(100);
        c.insert(1, 10, 40);
        c.insert(1, 20, 60);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 60);
        assert_eq!(c.get(&1), Some(&20));
    }
}
