//! Property-based tests over the full system: random workload parameters
//! and configurations must always produce terminating, internally
//! consistent, deterministic simulations.

use proptest::prelude::*;

use coaxial::cache::CalmPolicy;
use coaxial::cpu::{MemKind, TraceSource};
use coaxial::system::{Simulation, SystemConfig};
use coaxial::workloads::SyntheticParams;

/// Random-but-valid synthetic workload parameters.
fn arb_params() -> impl Strategy<Value = SyntheticParams> {
    (
        1.0f64..200.0, // mean_gap
        12u32..24,     // footprint_lines = 1 << exp
        0.0f64..1.0,   // spatial
        0.0f64..0.9,   // hot_frac
        0.0f64..0.6,   // write_frac
        0.0f64..0.7,   // pointer_chase
        0.0f64..0.1,   // burstiness
    )
        .prop_map(|(gap, fp_exp, spatial, hot, wf, chase, burst)| SyntheticParams {
            mean_gap: gap,
            footprint_lines: 1 << fp_exp,
            spatial,
            hot_frac: hot,
            hot_lines: 1 << 10,
            write_frac: wf,
            pointer_chase: chase,
            burstiness: burst,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Generators always produce well-formed ops confined to the core's
    /// address region, whatever the parameters.
    #[test]
    fn generators_are_well_formed(p in arb_params(), core in 0u32..12, seed in 0u64..1000) {
        let mut t = coaxial::workloads::synthetic::SyntheticTrace::new(p, core, seed);
        for _ in 0..2_000 {
            let op = t.next_op();
            prop_assert_eq!(op.line_addr >> coaxial::workloads::CORE_REGION_BITS, core as u64);
            prop_assert!(op.instructions() >= 1);
            if op.kind == MemKind::Store {
                // Stores are never flagged as chasing in the synthetic
                // generator (only loads are).
                prop_assert!(!op.depends_on_last_load);
            }
        }
    }
}

/// Run one tiny full-system simulation for a throwaway workload built from
/// random parameters. Uses a leaked registry-free workload via VecTrace —
/// instead we piggyback on the registry by perturbing seeds.
fn tiny_run(cfg: SystemConfig, seed: u64) -> coaxial::system::RunReport {
    // Perturb the seed: same workload, different address streams.
    let w = coaxial::workloads::Workload::all().get((seed % 36) as usize).expect("registry index");
    Simulation::new(cfg.with_seed(seed), w).instructions_per_core(1_200).warmup(200).run()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Any (workload, seed, config) triple terminates with consistent
    /// accounting.
    #[test]
    fn random_runs_terminate_consistently(seed in 0u64..10_000, coax in proptest::bool::ANY) {
        let cfg = if coax { SystemConfig::coaxial_4x() } else { SystemConfig::ddr_baseline() };
        let r = tiny_run(cfg, seed);
        prop_assert!(r.ipc > 0.0 && r.ipc <= 4.0, "ipc = {}", r.ipc);
        prop_assert_eq!(r.hier.llc_hits + r.hier.llc_misses, r.hier.l2_misses);
        let (on, q, s, x) = r.breakdown_ns;
        prop_assert!(on >= 0.0 && q >= 0.0 && s >= 0.0 && x >= 0.0);
        prop_assert!(r.utilization <= 1.0);
    }

    /// Identical inputs give identical outputs, whatever the seed.
    #[test]
    fn any_seed_is_deterministic(seed in 0u64..10_000) {
        let a = tiny_run(SystemConfig::coaxial_2x(), seed);
        let b = tiny_run(SystemConfig::coaxial_2x(), seed);
        prop_assert_eq!(a.ipc, b.ipc);
        prop_assert_eq!(a.cycles, b.cycles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The CALM_R knob is monotone-safe: any budget R in (0,1] produces a
    /// valid run, and R=0 degenerates to the serial hierarchy's traffic.
    #[test]
    fn calm_budget_never_breaks_accounting(r_budget in 0.05f64..1.0, seed in 0u64..100) {
        let cfg = SystemConfig::coaxial_4x().with_calm(CalmPolicy::CalmR { r: r_budget });
        let rep = tiny_run(cfg, seed);
        prop_assert!(rep.calm.false_pos.abs_diff(rep.hier.wasted_mem_reads) <= 64);
        prop_assert!(rep.ipc > 0.0);
    }
}
