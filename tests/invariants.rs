//! Cross-crate accounting invariants, checked over full-system runs.
//!
//! These assert that the statistics the experiments report are internally
//! consistent — every cycle of L2-miss latency is attributed to exactly
//! one component, every memory read has a reason, and CALM decision
//! counters tie out with traffic counters.

use coaxial::system::{RunReport, Simulation, SystemConfig};
use coaxial::workloads::Workload;

fn run(cfg: SystemConfig, workload: &str) -> RunReport {
    let w = Workload::by_name(workload).expect("workload exists");
    Simulation::new(cfg, w).instructions_per_core(8_000).warmup(1_500).run()
}

fn check_invariants(r: &RunReport, tag: &str) {
    // Every L2 miss is either an LLC hit or an LLC miss.
    assert_eq!(
        r.hier.llc_hits + r.hier.llc_misses,
        r.hier.l2_misses,
        "{tag}: LLC outcome accounting"
    );
    // Demand reads = LLC misses + wasted CALM fetches (modulo requests
    // still in flight at harvest).
    let expected = r.hier.llc_misses + r.hier.wasted_mem_reads;
    let slack = 64; // in-flight transactions at the window edge
    assert!(
        r.hier.mem_reads <= expected + slack && r.hier.mem_reads + slack >= expected,
        "{tag}: mem_reads {} vs llc_misses+wasted {}",
        r.hier.mem_reads,
        expected
    );
    // Latency components are non-negative and sum to the histogram mean.
    let (on, q, s, x) = r.breakdown_ns;
    for (name, v) in [("onchip", on), ("queue", q), ("dram", s), ("cxl", x)] {
        assert!(v >= 0.0, "{tag}: negative {name} component: {v}");
    }
    let total = on + q + s + x;
    assert!(
        (total - r.l2_miss_latency_ns).abs() < 2.0,
        "{tag}: components {total:.1} != mean {:.1}",
        r.l2_miss_latency_ns
    );
    // CALM decision counters tie out with traffic (a handful of decided-
    // but-not-yet-issued fetches may remain in flight at harvest).
    // (decisions and issues can each straddle the warmup boundary, in
    // either direction, by at most the in-flight window)
    assert!(
        r.calm.false_pos.abs_diff(r.hier.wasted_mem_reads) <= 64,
        "{tag}: false positives {} vs wasted fetches {}",
        r.calm.false_pos,
        r.hier.wasted_mem_reads
    );
    assert_eq!(r.calm.decisions(), r.hier.l2_misses, "{tag}: one decision per L2 miss");
    // Bandwidth sanity: cannot exceed the configured peak.
    assert!(r.utilization <= 1.0 + 1e-9, "{tag}: utilization {} > 1", r.utilization);
    // DDR-side counts at least cover the hierarchy-issued traffic (the
    // backend may have absorbed a few more in-flight requests).
    assert!(r.ddr.reads + 64 >= r.hier.mem_reads, "{tag}: backend saw fewer reads than issued");
}

#[test]
fn invariants_hold_on_baseline() {
    for w in ["lbm", "gcc", "PageRank", "masstree", "stream-add"] {
        let r = run(SystemConfig::ddr_baseline(), w);
        check_invariants(&r, &format!("baseline/{w}"));
    }
}

#[test]
fn invariants_hold_on_coaxial_variants() {
    for w in ["Components", "mcf", "stream-copy", "kmeans"] {
        for cfg in
            [SystemConfig::coaxial_2x(), SystemConfig::coaxial_4x(), SystemConfig::coaxial_asym()]
        {
            let tag = format!("{}/{w}", cfg.name);
            let r = run(cfg, w);
            check_invariants(&r, &tag);
        }
    }
}

#[test]
fn serial_policy_never_wastes_bandwidth() {
    use coaxial::cache::CalmPolicy;
    let r = run(SystemConfig::coaxial_4x().with_calm(CalmPolicy::Serial), "bwaves");
    assert_eq!(r.hier.wasted_mem_reads, 0);
    assert_eq!(r.calm.false_pos + r.calm.true_pos, 0);
    check_invariants(&r, "serial");
}

#[test]
fn ideal_policy_never_mispredicts() {
    use coaxial::cache::CalmPolicy;
    let r = run(SystemConfig::coaxial_4x().with_calm(CalmPolicy::Ideal), "fotonik3d");
    assert_eq!(r.calm.false_pos, 0, "oracle has no false positives");
    assert_eq!(r.calm.false_neg, 0, "oracle has no false negatives");
    check_invariants(&r, "ideal");
}

#[test]
fn mixes_preserve_invariants() {
    let mix = coaxial::workloads::mixes::mix(3, 12);
    let r = Simulation::new_mix(SystemConfig::coaxial_4x(), &mix)
        .instructions_per_core(4_000)
        .warmup(800)
        .run();
    check_invariants(&r, "mix-3");
    assert_eq!(r.per_core_ipc.len(), 12);
    assert!(r.per_core_ipc.iter().all(|&i| i > 0.0));
}
