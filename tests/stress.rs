//! Stress and failure-injection tests: tiny queues, hostile traffic, and
//! degenerate configurations must never deadlock or corrupt accounting.

use coaxial::cxl::{CxlLinkConfig, CxlMemory};
use coaxial::dram::{DramConfig, MemRequest, MemoryBackend, MultiChannel};
use coaxial::system::{Simulation, SystemConfig};
use coaxial::workloads::Workload;

/// A DRAM configuration with pathologically small queues: maximum
/// back-pressure on every path.
fn tiny_dram() -> DramConfig {
    DramConfig {
        read_queue_depth: 2,
        write_queue_depth: 2,
        write_drain_hi: 2,
        write_drain_lo: 0,
        ..DramConfig::ddr5_4800()
    }
}

#[test]
fn tiny_queues_do_not_deadlock_direct_ddr() {
    let mut m = MultiChannel::new(&tiny_dram(), 1);
    let mut issued = 0u64;
    let mut done = 0u64;
    let total = 500u64;
    for now in 0..3_000_000u64 {
        m.tick(now);
        while issued < total {
            let req = if issued.is_multiple_of(3) {
                MemRequest::write(issued, issued * 977, now)
            } else {
                MemRequest::read(issued, issued * 977, now)
            };
            if m.try_enqueue(req).is_err() {
                break;
            }
            issued += 1;
        }
        while m.pop_response(now).is_some() {
            done += 1;
        }
        if done == total {
            break;
        }
    }
    assert_eq!(done, total, "all requests must complete under tiny queues");
}

#[test]
fn tiny_queues_do_not_deadlock_cxl() {
    let link =
        CxlLinkConfig { req_queue_depth: 2, device_buf_depth: 1, ..CxlLinkConfig::x8_symmetric() };
    let mut m = CxlMemory::new(&link, &tiny_dram(), 2);
    let mut issued = 0u64;
    let mut done = 0u64;
    let total = 400u64;
    for now in 0..3_000_000u64 {
        m.tick(now);
        while issued < total {
            let req = if issued.is_multiple_of(4) {
                MemRequest::write(issued, issued * 1009, now)
            } else {
                MemRequest::read(issued, issued * 1009, now)
            };
            if m.try_enqueue(req).is_err() {
                break;
            }
            issued += 1;
        }
        while m.pop_response(now).is_some() {
            done += 1;
        }
        if done == total {
            break;
        }
    }
    assert_eq!(done, total, "all requests must complete through a constricted CXL path");
}

#[test]
fn full_system_survives_tiny_memory_queues() {
    let cfg = {
        let mut c = SystemConfig::coaxial_4x();
        c.timing.dram = tiny_dram();
        c
    };
    let w = Workload::by_name("lbm").unwrap();
    let r = Simulation::new(cfg, w).instructions_per_core(2_000).warmup(300).run();
    assert!(r.ipc > 0.0, "progress despite extreme back-pressure");
}

#[test]
fn single_bank_single_subchannel_still_works() {
    // Degenerate geometry: one sub-channel, one bank group, one bank.
    let cfg = DramConfig {
        subchannels: 1,
        bank_groups: 1,
        banks_per_group: 1,
        ..DramConfig::ddr5_4800()
    };
    let mut m = MultiChannel::new(&cfg, 1);
    let mut done = 0;
    for i in 0..100u64 {
        m.try_enqueue(MemRequest::read(i, i * 3301, 0)).ok();
    }
    for now in 0..2_000_000u64 {
        m.tick(now);
        while m.pop_response(now).is_some() {
            done += 1;
        }
    }
    assert!(done > 0, "single-bank config must make progress");
}

#[test]
fn pathological_same_row_thrash_completes() {
    // Strictly serialized alternating rows in the same bank: every access
    // forces a PRE/ACT swing (FR-FCFS cannot batch, because only one
    // request is ever outstanding).
    let mut m = MultiChannel::new(&DramConfig::ddr5_4800(), 1);
    let cfg = DramConfig::ddr5_4800();
    let bank_stride = cfg.lines_per_row() * cfg.banks_per_subchannel() as u64 * 2;
    let mut issued = 0u64;
    let mut done = 0u64;
    let mut outstanding = false;
    for now in 0..5_000_000u64 {
        m.tick(now);
        if !outstanding && issued < 300 {
            let row = issued % 2;
            if m.try_enqueue(MemRequest::read(issued, row * bank_stride, now)).is_ok() {
                issued += 1;
                outstanding = true;
            }
        }
        if m.pop_response(now).is_some() {
            done += 1;
            outstanding = false;
        }
        if done == 300 {
            break;
        }
    }
    assert_eq!(done, 300);
    let st = m.stats();
    // With one request outstanding at a time the idle-precharge policy
    // closes the row between accesses, so the ping-pong shows up as
    // closed-bank misses (or conflicts when the PRE hasn't happened yet) —
    // and crucially, almost never as row hits.
    assert!(st.row_hits < 10, "ping-pong cannot produce row hits, got {}", st.row_hits);
    assert!(
        st.row_misses + st.row_conflicts > 290,
        "every access pays an activation: misses {} conflicts {}",
        st.row_misses,
        st.row_conflicts
    );
}

#[test]
fn zero_warmup_runs_cleanly() {
    let w = Workload::by_name("BFS").unwrap();
    let r = Simulation::new(SystemConfig::ddr_baseline(), w)
        .instructions_per_core(3_000)
        .warmup(0)
        .run();
    assert!(r.ipc > 0.0);
}

#[test]
fn cycle_cap_terminates_runs() {
    // A hard cap must end the run even if the budget is unreachable.
    let w = Workload::by_name("lbm").unwrap();
    let r = Simulation::new(SystemConfig::ddr_baseline(), w)
        .instructions_per_core(u64::MAX / 2)
        .warmup(0)
        .max_cycles(20_000)
        .run();
    assert_eq!(r.cycles, 20_000, "must stop exactly at the cap");
    assert!(r.ipc > 0.0, "partial progress still reported");
}
