//! End-to-end integration tests of the headline paper claims, on reduced
//! instruction budgets. These span every crate: workload generators drive
//! cores, through the cache hierarchy and CALM, over DDR or CXL backends.

use coaxial::cache::CalmPolicy;
use coaxial::system::{RunReport, Simulation, SystemConfig};
use coaxial::workloads::Workload;

const INSTR: u64 = 12_000;

fn run(cfg: SystemConfig, workload: &str) -> RunReport {
    let w = Workload::by_name(workload).expect("workload exists");
    Simulation::new(cfg, w).instructions_per_core(INSTR).warmup(2_000).run()
}

#[test]
fn bandwidth_bound_workloads_gain_substantially() {
    for name in ["stream-copy", "stream-add", "lbm"] {
        let base = run(SystemConfig::ddr_baseline(), name);
        let coax = run(SystemConfig::coaxial_4x(), name);
        let s = coax.speedup_over(&base);
        assert!(s > 1.5, "{name}: speedup {s:.2} should exceed 1.5x");
    }
}

#[test]
fn latency_bound_workloads_do_not_gain() {
    for name in ["raytrace", "pop2"] {
        let base = run(SystemConfig::ddr_baseline(), name);
        let coax = run(SystemConfig::coaxial_4x(), name);
        let s = coax.speedup_over(&base);
        assert!(s < 1.1, "{name}: speedup {s:.2} should be ~flat or negative");
    }
}

#[test]
fn queuing_delay_collapses_on_coaxial() {
    let base = run(SystemConfig::ddr_baseline(), "stream-triad");
    let coax = run(SystemConfig::coaxial_4x(), "stream-triad");
    let (_, q_base, _, _) = base.breakdown_ns;
    let (_, q_coax, _, _) = coax.breakdown_ns;
    assert!(q_coax < q_base / 3.0, "queuing must collapse: {q_base:.0} ns -> {q_coax:.0} ns");
}

#[test]
fn cxl_interface_delay_matches_the_model() {
    let coax = run(SystemConfig::coaxial_4x(), "PageRank");
    let (_, _, _, cxl) = coax.breakdown_ns;
    // ~52.5 ns for reads; the average mixes in LLC-hit L2 misses (0 CXL),
    // so it lands at llc_miss_ratio × 52.5.
    let expected = coax.llc_miss_ratio * 52.5;
    assert!((cxl - expected).abs() < 8.0, "CXL component {cxl:.1} ns vs expected {expected:.1} ns");
}

#[test]
fn relative_utilization_drops_despite_higher_traffic() {
    let base = run(SystemConfig::ddr_baseline(), "kmeans");
    let coax = run(SystemConfig::coaxial_4x(), "kmeans");
    assert!(coax.bandwidth_gbs > base.bandwidth_gbs, "absolute traffic grows");
    assert!(coax.utilization < base.utilization, "relative utilization drops");
}

#[test]
fn asym_beats_symmetric_for_read_heavy_workloads() {
    let base = run(SystemConfig::ddr_baseline(), "PageRank");
    let c4 = run(SystemConfig::coaxial_4x(), "PageRank");
    let ca = run(SystemConfig::coaxial_asym(), "PageRank");
    assert!(
        ca.speedup_over(&base) > c4.speedup_over(&base),
        "asym {:.2} must beat 4x {:.2}",
        ca.speedup_over(&base),
        c4.speedup_over(&base)
    );
}

#[test]
fn higher_cxl_latency_reduces_speedup() {
    let base = run(SystemConfig::ddr_baseline(), "Components");
    let at50 = run(SystemConfig::coaxial_4x(), "Components").speedup_over(&base);
    let at70 =
        run(SystemConfig::coaxial_4x().with_cxl_latency_ns(70.0), "Components").speedup_over(&base);
    let at10 =
        run(SystemConfig::coaxial_4x().with_cxl_latency_ns(10.0), "Components").speedup_over(&base);
    assert!(at10 > at50, "10ns {at10:.2} > 50ns {at50:.2}");
    assert!(at50 > at70, "50ns {at50:.2} > 70ns {at70:.2}");
}

#[test]
fn single_core_underutilization_hurts_coaxial() {
    let base = run(SystemConfig::ddr_baseline().with_active_cores(1), "omnetpp");
    let coax = run(SystemConfig::coaxial_4x().with_active_cores(1), "omnetpp");
    assert!(
        coax.speedup_over(&base) < 1.0,
        "1-core speedup {:.2} should be a slowdown (paper Fig. 11)",
        coax.speedup_over(&base)
    );
}

#[test]
fn calm_70_helps_coaxial_more_than_baseline() {
    let w = "stream-scale";
    let coax_serial = run(SystemConfig::coaxial_4x().with_calm(CalmPolicy::Serial), w);
    let coax_calm = run(SystemConfig::coaxial_4x(), w);
    let gain = coax_calm.speedup_over(&coax_serial);
    assert!(gain > 1.0, "CALM must help COAXIAL on a high-miss-ratio stream: {gain:.3}");
}

#[test]
fn full_runs_are_bit_deterministic() {
    let a = run(SystemConfig::coaxial_asym(), "masstree");
    let b = run(SystemConfig::coaxial_asym(), "masstree");
    assert_eq!(a.ipc, b.ipc);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.hier.mem_reads, b.hier.mem_reads);
    assert_eq!(a.hier.mem_writes, b.hier.mem_writes);
    assert_eq!(a.calm.decisions(), b.calm.decisions());
}

#[test]
fn all_five_configurations_run_every_suite_representative() {
    // One workload per suite through every configuration: a broad smoke
    // test that the whole matrix is wired correctly.
    for name in ["lbm", "BFS", "stream-copy", "canneal", "masstree"] {
        for cfg in [
            SystemConfig::ddr_baseline(),
            SystemConfig::coaxial_2x(),
            SystemConfig::coaxial_4x(),
            SystemConfig::coaxial_5x(),
            SystemConfig::coaxial_asym(),
        ] {
            let w = Workload::by_name(name).unwrap();
            let r = Simulation::new(cfg, w).instructions_per_core(2_000).warmup(500).run();
            assert!(r.ipc > 0.0, "{name} produced no progress");
            assert!(r.ipc <= 4.0, "{name} exceeded the 4-wide limit");
        }
    }
}
