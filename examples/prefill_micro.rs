//! Microbenchmark for the prefill hot path (dev aid, not a paper figure):
//! times trace generation and functional cache warming separately.
//!
//! ```text
//! cargo run --release --example prefill_micro
//! ```

use std::time::Instant;

use coaxial::cache::{CalmPolicy, Hierarchy, HierarchyConfig};
use coaxial::cpu::TraceSource;
use coaxial::dram::{DramConfig, MultiChannel};
use coaxial::workloads::Workload;

fn main() {
    const OPS: usize = 3_000_000;
    let w = Workload::by_name("mcf").unwrap();

    // 1. Trace generation alone.
    let mut t = w.trace(0, 0xF111);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..OPS {
        let (line, st) = t.next_access();
        acc = acc.wrapping_add(line).wrapping_add(st as u64);
    }
    let gen = t0.elapsed();
    println!(
        "next_access: {OPS} ops in {:.3}s ({:.1} ns/op, sink {acc})",
        gen.as_secs_f64(),
        gen.as_secs_f64() * 1e9 / OPS as f64
    );

    // 2. Generation + prefill into a 12-core hierarchy.
    let cfg = HierarchyConfig::table_iii(12, 2, 2.0, 38.4, CalmPolicy::Serial);
    let mut h = Hierarchy::new(cfg, MultiChannel::new(&DramConfig::ddr5_4800(), 2));
    let mut traces: Vec<_> = (0..12).map(|i| w.trace(i, 0xF111)).collect();
    let ahead: usize = std::env::var("AHEAD").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let mut buf: Vec<(u64, bool)> = Vec::with_capacity(OPS / 8 / 12);
    let t0 = Instant::now();
    for round in 0..8 {
        for (i, t) in traces.iter_mut().enumerate() {
            buf.clear();
            buf.extend((0..OPS / 8 / 12).map(|_| t.next_access()));
            for j in 0..buf.len() {
                if let Some(&(a, _)) = buf.get(j + ahead) {
                    h.prefill_prefetch(coaxial_sim::small_u32(i), a);
                }
                let (line, st) = buf[j];
                h.prefill_access(coaxial_sim::small_u32(i), line, st);
            }
        }
        let _ = round;
    }
    let pre = t0.elapsed();
    println!(
        "prefill:     {OPS} ops in {:.3}s ({:.1} ns/op, gen share {:.0}%, ahead {ahead})",
        pre.as_secs_f64(),
        pre.as_secs_f64() * 1e9 / OPS as f64,
        100.0 * gen.as_secs_f64() / pre.as_secs_f64()
    );
}
