//! Quickstart: simulate one workload on the DDR baseline and on
//! COAXIAL-4x, and print the speedup with its latency anatomy.
//!
//! ```sh
//! cargo run --release --example quickstart [workload]
//! ```

use coaxial::system::{Simulation, SystemConfig};
use coaxial::workloads::Workload;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "stream-triad".to_string());
    let workload = Workload::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}'; available:");
        for w in Workload::all() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    });

    println!(
        "workload: {}  (paper baseline IPC {:.2}, MPKI {})",
        workload.name, workload.paper_ipc, workload.paper_mpki
    );

    let budget = 60_000;
    let base =
        Simulation::new(SystemConfig::ddr_baseline(), workload).instructions_per_core(budget).run();
    let coax =
        Simulation::new(SystemConfig::coaxial_4x(), workload).instructions_per_core(budget).run();

    for r in [&base, &coax] {
        let (on, q, s, x) = r.breakdown_ns;
        println!(
            "\n{:<13} IPC {:.3}   L2-miss latency {:.0} ns \
             (on-chip {:.0} + queuing {:.0} + DRAM {:.0} + CXL {:.0})",
            r.config_name, r.ipc, r.l2_miss_latency_ns, on, q, s, x
        );
        println!(
            "{:<13} memory traffic {:.1} GB/s ({:.1} rd + {:.1} wr), \
             {:.0}% of this system's peak",
            "",
            r.bandwidth_gbs,
            r.read_gbs,
            r.write_gbs,
            r.utilization * 100.0
        );
    }

    println!("\nspeedup: {:.2}x", coax.speedup_over(&base));
    println!(
        "CXL adds ~50 ns to every memory access, yet the {:.0} ns of queuing the \
         baseline suffers at {:.0}% utilization more than pays for it.",
        base.breakdown_ns.1,
        base.utilization * 100.0
    );
}
