//! Domain scenario: a key-value store (masstree) weighing COAXIAL's
//! latency premium against its queuing relief — including tail latency,
//! which matters more than the mean for a KVS.
//!
//! Also sweeps the CXL latency premium (Fig. 10's 50/70 ns plus the
//! OMI-like 10 ns projection) to show where the crossover sits for a
//! pointer-chasing, latency-sensitive service.
//!
//! ```sh
//! cargo run --release --example kvs_tail_latency
//! ```

use coaxial::sim::NS_PER_CYCLE;
use coaxial::system::{RunReport, Simulation, SystemConfig};
use coaxial::workloads::Workload;

const BUDGET: u64 = 40_000;

fn run(cfg: SystemConfig) -> RunReport {
    let w = Workload::by_name("masstree").expect("masstree registered");
    Simulation::new(cfg, w).instructions_per_core(BUDGET).run()
}

fn show(tag: &str, r: &RunReport, base: Option<&RunReport>) {
    let p50 = r.hier.l2_miss_latency.percentile(50.0) as f64 * NS_PER_CYCLE;
    let p90 = r.hier.l2_miss_latency.percentile(90.0) as f64 * NS_PER_CYCLE;
    let p99 = r.hier.l2_miss_latency.percentile(99.0) as f64 * NS_PER_CYCLE;
    let speedup = base.map(|b| format!("  speedup {:.2}x", r.ipc / b.ipc)).unwrap_or_default();
    println!(
        "{tag:<22} IPC {:.3}  L2-miss p50/p90/p99 = {:>5.0}/{:>5.0}/{:>6.0} ns{speedup}",
        r.ipc, p50, p90, p99
    );
}

fn main() {
    println!("masstree (pointer-chasing KVS) on a fully loaded 12-core slice\n");
    let base = run(SystemConfig::ddr_baseline());
    show("DDR baseline", &base, None);

    for lat_ns in [50.0, 70.0, 10.0] {
        let r = run(SystemConfig::coaxial_4x().with_cxl_latency_ns(lat_ns));
        show(&format!("COAXIAL-4x @{lat_ns:.0}ns CXL"), &r, Some(&base));
    }

    // Underutilized service: the worst case for COAXIAL (Fig. 11).
    println!("\nsame comparison at 1 active core (8% server utilization):");
    let base1 = run(SystemConfig::ddr_baseline().with_active_cores(1));
    show("DDR baseline", &base1, None);
    let coax1 = run(SystemConfig::coaxial_4x().with_active_cores(1));
    show("COAXIAL-4x @50ns CXL", &coax1, Some(&base1));

    println!(
        "\ntakeaway: at full load the queuing relief offsets the CXL premium even for a \
         chase-bound KVS; at 8% utilization the premium is exposed — match the paper's \
         guidance to deploy COAXIAL on high-utilization, throughput-oriented servers."
    );
}
