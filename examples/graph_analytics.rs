//! Domain scenario: a graph-analytics service (LIGRA PageRank /
//! Components) choosing a memory system.
//!
//! Sweeps the COAXIAL design space of Table II — baseline, -2x, -4x,
//! -asym — over bandwidth-hungry graph workloads, and separately ablates
//! CALM to show how much of the win comes from bandwidth vs. from taking
//! the LLC off the critical path.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use coaxial::cache::CalmPolicy;
use coaxial::system::{Simulation, SystemConfig};
use coaxial::workloads::Workload;

const GRAPH_WORKLOADS: [&str; 4] = ["PageRank", "Components", "BC", "Radii"];
const BUDGET: u64 = 40_000;

fn run(cfg: SystemConfig, w: &'static Workload) -> coaxial::system::RunReport {
    Simulation::new(cfg, w).instructions_per_core(BUDGET).run()
}

fn main() {
    println!("graph-analytics memory-system sweep ({} instr/core)\n", BUDGET);
    println!(
        "{:<13} {:>9} {:>9} {:>9} {:>9}   {:>11}",
        "workload", "baseline", "COAX-2x", "COAX-4x", "COAX-asym", "4x BW util"
    );
    let mut geo: [f64; 3] = [0.0; 3];
    for name in GRAPH_WORKLOADS {
        let w = Workload::by_name(name).expect("registry workload");
        let base = run(SystemConfig::ddr_baseline(), w);
        let c2 = run(SystemConfig::coaxial_2x(), w);
        let c4 = run(SystemConfig::coaxial_4x(), w);
        let ca = run(SystemConfig::coaxial_asym(), w);
        println!(
            "{:<13} {:>8.3} {:>8.2}x {:>8.2}x {:>8.2}x   {:>10.0}%",
            name,
            base.ipc,
            c2.speedup_over(&base),
            c4.speedup_over(&base),
            ca.speedup_over(&base),
            c4.utilization * 100.0,
        );
        geo[0] += c2.speedup_over(&base).ln();
        geo[1] += c4.speedup_over(&base).ln();
        geo[2] += ca.speedup_over(&base).ln();
    }
    let n = GRAPH_WORKLOADS.len() as f64;
    println!(
        "{:<13} {:>9} {:>8.2}x {:>8.2}x {:>8.2}x",
        "geomean",
        "-",
        (geo[0] / n).exp(),
        (geo[1] / n).exp(),
        (geo[2] / n).exp()
    );

    // CALM ablation on COAXIAL-4x: how much of the win is the concurrent
    // LLC/memory lookup vs. raw bandwidth?
    println!("\nCALM ablation on COAXIAL-4x (speedup vs serial hierarchy):");
    for name in GRAPH_WORKLOADS {
        let w = Workload::by_name(name).unwrap();
        let serial = run(SystemConfig::coaxial_4x().with_calm(CalmPolicy::Serial), w);
        let calm70 = run(SystemConfig::coaxial_4x(), w);
        let ideal = run(SystemConfig::coaxial_4x().with_calm(CalmPolicy::Ideal), w);
        println!(
            "  {:<13} CALM-70% {:>5.2}x  ideal {:>5.2}x  (FP {:>4.1}% of mem accesses, FN {:>4.1}% of LLC misses)",
            name,
            calm70.speedup_over(&serial),
            ideal.speedup_over(&serial),
            calm70.calm.false_pos_per_mem_access() * 100.0,
            calm70.calm.false_neg_per_llc_miss() * 100.0,
        );
    }
}
