//! Domain scenario: server capacity planning with the analytic models.
//!
//! Uses the pin (Fig. 1), area (Tables I/II), and power (Table V) models
//! plus short simulation runs to answer: *for a 144-core part with a fixed
//! pin and die budget, which memory system should we build?*
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use coaxial::system::area::{AreaModel, ServerDesign};
use coaxial::system::pinout;
use coaxial::system::power::{report, PowerModel};
use coaxial::system::{Simulation, SystemConfig};
use coaxial::workloads::Workload;

const BUDGET: u64 = 30_000;

/// Measure average CPI of a config over a representative workload set.
fn measured_cpi(cfg: fn() -> SystemConfig) -> f64 {
    let set = ["stream-triad", "PageRank", "mcf", "gcc", "masstree", "kmeans"];
    let mut sum = 0.0;
    for name in set {
        let w = Workload::by_name(name).unwrap();
        let r = Simulation::new(cfg(), w).instructions_per_core(BUDGET).run();
        sum += 1.0 / r.ipc.max(1e-9);
    }
    sum / set.len() as f64
}

fn main() {
    println!("== pin economics (Fig. 1) ==");
    println!(
        "PCIe 5.0 delivers {:.1}x the bandwidth per processor pin of DDR5-4800;",
        pinout::pcie5_vs_ddr5_ratio()
    );
    println!(
        "one DDR channel's 160 pins buy {} x8 CXL channels.\n",
        coaxial::system::area::cxl_channels_per_ddr_pins()
    );

    println!("== die budget (Tables I & II) ==");
    let m = AreaModel::table_i();
    for d in ServerDesign::table_ii() {
        println!(
            "  {:<13} {:>2} DDR + {:>2} CXL channels, LLC {:>3.0} MB -> {:.2}x die area ({})",
            d.name,
            d.ddr_channels,
            d.cxl_x8_channels,
            d.cores as f64 * d.llc_mb_per_core,
            d.relative_area(&m),
            d.comment
        );
    }

    println!("\n== measured performance & energy (Table V methodology) ==");
    let cpi_base = measured_cpi(SystemConfig::ddr_baseline);
    let cpi_coax = measured_cpi(SystemConfig::coaxial_4x);
    let pm = PowerModel::table_v();
    let base = report("Baseline", &pm, 288.0, 12, 0, pm.dimm_w_baseline_per_channel, cpi_base);
    let coax = report("COAXIAL", &pm, 144.0, 48, 384, pm.dimm_w_coaxial_per_channel, cpi_coax);
    for r in [&base, &coax] {
        println!(
            "  {:<9} {:>4.0} W total, CPI {:.2}, EDP {:>6.0}, ED2P {:>6.0}",
            r.name, r.total_w, r.cpi, r.edp, r.ed2p
        );
    }
    println!(
        "\ndecision: COAXIAL-4x draws {:.0}% more power but cuts EDP to {:.2}x and ED2P to \
         {:.2}x of the baseline — the right trade for a throughput-optimized, \
         performance-per-TCO part (paper: 0.75x / 0.53x).",
        (coax.total_w / base.total_w - 1.0) * 100.0,
        coax.edp / base.edp,
        coax.ed2p / base.ed2p
    );
}
