#!/usr/bin/env bash
# Repo gate: format, build, test, lint. Run before every push.
#
#   scripts/check.sh
#
# The container is offline; --offline keeps cargo from probing crates.io.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== cargo clippy =="
# -D warnings plus a curated pedantic subset: lossy casts must go through
# coaxial_sim::narrow (see lint T01), and config structs are passed by
# reference unless the callee stores them.
cargo clippy --offline --workspace --all-targets -- \
  -D warnings \
  -D clippy::cast_possible_truncation \
  -D clippy::large_types_passed_by_value \
  -D clippy::needless_pass_by_value

echo "== checkpoint-stats =="
# Prefill checkpoint smoke test: two identical runs, the second must
# restore from the content-addressed store (exits non-zero otherwise) and
# the hit-rate line below is the sweep-speedup evidence in miniature.
cargo run -q --offline --release --bin coaxial -- checkpoint-stats mcf --instr 8000 --warmup 2000

echo "== gateway smoke =="
# Boot a loopback gateway, prove a served run is byte-identical to the
# CLI's --json report, check /metrics renders, and drain-shutdown cleanly
# (the serve process must exit 0 with its stats line).
BIN=target/release/coaxial
GWDIR=$(mktemp -d)
trap 'rm -rf "$GWDIR"' EXIT
"$BIN" run mcf --config 4x --instr 4000 --warmup 1000 --json > "$GWDIR/cli.json"
"$BIN" serve --addr 127.0.0.1:0 --port-file "$GWDIR/port.txt" --workers 2 \
  > "$GWDIR/serve.log" 2>&1 &
GWPID=$!
for _ in $(seq 1 100); do
  [ -s "$GWDIR/port.txt" ] && break
  sleep 0.1
done
ADDR=$(cat "$GWDIR/port.txt")
"$BIN" http POST "http://$ADDR/v1/run" \
  '{"workload":"mcf","config":"4x","instructions":4000,"warmup":1000}' \
  > "$GWDIR/srv.json"
cmp "$GWDIR/cli.json" "$GWDIR/srv.json"
echo "gateway report is byte-identical to the CLI"
"$BIN" http GET "http://$ADDR/metrics" | grep -q "gateway.queue.depth"
"$BIN" http POST "http://$ADDR/shutdown" ''
wait "$GWPID"
cat "$GWDIR/serve.log"

echo "== sampling smoke =="
# SMARTS-style interval sampling (DESIGN.md §5i): a sampled run must cover
# a 100x longer per-core horizon than a full-detail Budget::quick run in
# no more than 2x its wall, report a 95% confidence interval in the JSON,
# and stay run-to-run deterministic (byte-identical reports).
t0=$(date +%s%N)
"$BIN" run mcf --config 4x --instr 6000 --warmup 1000 --json > /dev/null
full_ms=$(( ($(date +%s%N) - t0) / 1000000 ))
t0=$(date +%s%N)
"$BIN" run mcf --config 4x --instr 600000 --sampled --json > "$GWDIR/sampled.json"
sampled_ms=$(( ($(date +%s%N) - t0) / 1000000 ))
grep -q '"sampling":{' "$GWDIR/sampled.json"
grep -q '"ipc_ci_half":' "$GWDIR/sampled.json"
"$BIN" run mcf --config 4x --instr 600000 --sampled --json > "$GWDIR/sampled2.json"
cmp "$GWDIR/sampled.json" "$GWDIR/sampled2.json"
echo "sampled 100x horizon: ${sampled_ms} ms vs full-detail quick: ${full_ms} ms"
if [ "$sampled_ms" -gt $((2 * full_ms)) ]; then
  echo "sampled run exceeded 2x the full-detail quick wall" >&2
  exit 1
fi

echo "== coaxial-lint =="
# Workspace static analysis: determinism (D01/D02), timing arithmetic
# (T01/T02), zero-cost telemetry (Z01), unsafe hygiene (U01), the
# cross-file coverage rules (C01, E01/E02/E03/E04/E05, M01), lock
# discipline (L01), and the unit-of-measure dataflow rules (Q01/Q02/Q03)
# over the resolved symbol graph. Suppressions live in lint-allow.toml;
# the rule catalog is docs/LINTS.md. CI always runs the full scan;
# `--changed-only` exists for local loops. The JSON and SARIF reports are
# written next to the text run (CI uploads both as artifacts) and the
# scan must stay inside a wall-time budget so the resolver/graph/dataflow
# tiers never quietly turn the gate sluggish — the per-rule breakdown on
# stderr names the rule to optimize when this trips.
lint_start=$SECONDS
cargo run -q --offline -p coaxial-lint --release
LINT_JSON="${LINT_REPORT_PATH:-target/coaxial-lint-report.json}"
cargo run -q --offline -p coaxial-lint --release -- --format json > "$LINT_JSON"
cargo run -q --offline -p coaxial-lint --release -- --format sarif \
  > "${LINT_SARIF_PATH:-target/coaxial-lint-report.sarif}"
lint_wall=$((SECONDS - lint_start))
echo "coaxial-lint wall time: ${lint_wall}s (budget ${LINT_BUDGET_SECS:=60}s)"
if [ "$lint_wall" -gt "$LINT_BUDGET_SECS" ]; then
  echo "coaxial-lint exceeded its ${LINT_BUDGET_SECS}s wall-time budget" >&2
  exit 1
fi
# Per-rule budget over the report's timings_ms map (the dataflow tier's
# Q01 fixpoint is the heaviest single rule — this catches a superlinear
# regression in any one rule long before the whole-scan budget trips).
slow_rules=$(tr ',{}' '\n\n\n' < "$LINT_JSON" \
  | grep -E '^"[A-Z][0-9]+":[0-9.]+$' \
  | awk -F'[":]' -v b="${LINT_RULE_BUDGET_MS:-5000}" '$4 + 0 > b { printf "%s %.0fms\n", $2, $4 }' \
  || true)
if [ -n "$slow_rules" ]; then
  echo "coaxial-lint rules over the ${LINT_RULE_BUDGET_MS:-5000}ms per-rule budget:" >&2
  echo "$slow_rules" >&2
  exit 1
fi

echo "check.sh: all green"
