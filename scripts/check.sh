#!/usr/bin/env bash
# Repo gate: build, test, lint. Run before every push.
#
#   scripts/check.sh
#
# The container is offline; --offline keeps cargo from probing crates.io.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release --offline --workspace

echo "== cargo test =="
cargo test -q --offline --workspace

echo "== cargo clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "check.sh: all green"
