//! `coaxial` — command-line front end to the COAXIAL reproduction.
//!
//! ```text
//! coaxial list                            # the 36 workloads
//! coaxial configs                         # Table II / III configurations
//! coaxial run <workload> [opts]           # one simulation, full report
//! coaxial compare <workload> [opts]       # baseline vs every COAXIAL variant
//! coaxial sweep-latency <workload> [opts] # CXL latency premium sweep
//! coaxial breakdown <workload> [opts]     # per-component L2-miss latency
//! coaxial trace <workload> <out.json> [opts] # Perfetto/Chrome event trace
//! coaxial profile <workload> [--ops N]       # characterize a generator
//! coaxial capture <workload> <file> [--ops N]
//! coaxial replay <file> [opts]            # run a captured .cxtr trace
//! coaxial checkpoint-stats [workload] [opts] # prefill checkpoint hit rate over two runs
//! coaxial exp <name> [opts]               # one paper experiment by name
//! coaxial serve [serve options]           # HTTP gateway: POST /v1/run etc.
//! coaxial http <METHOD> <url> [body]      # tiny HTTP client for scripts
//!
//! common options:
//!   --config <name>   ddr | 2x | 4x | 5x | asym        (default: 4x)
//!   --instr <n>       measured instructions per core    (default: 120000)
//!   --warmup <n>      warmup instructions per core      (default: 20000)
//!   --cores <n>       active cores (1..12)              (default: 12)
//!   --cxl-ns <f>      CXL latency premium override in ns
//!   --json            run only: emit the report as one JSON line
//!   --sampled         run only: SMARTS interval sampling; --instr is the
//!                     total horizon, COAXIAL_SAMPLING* shape the intervals
//!   --trace-start <c> --trace-end <c>     trace window in cycles
//!   --trace-cap <n>   trace ring capacity in events     (default: 65536)
//!
//! serve options (defaults from COAXIAL_GATEWAY_* env, see coaxial-gateway):
//!   --addr <host:port>   listen address (":0" picks an ephemeral port)
//!   --workers <n>        simulation worker threads
//!   --queue-depth <n>    queued jobs admitted before 429
//!   --cache-mb <n>       result-cache byte budget, in MB
//!   --rate <n>           per-client requests/second, 0 disables
//!   --burst <n>          per-client token-bucket burst
//!   --port-file <path>   write the bound address here once listening
//! ```

use std::process::exit;

use coaxial::cpu::tracefile;
use coaxial::system::experiments::{latency_breakdown, run_named, Budget, EXPERIMENT_NAMES};
use coaxial::system::runner::{run_all, RunSpec};
use coaxial::system::{RunReport, SamplingConfig, SamplingSummary, Simulation, SystemConfig};
use coaxial::telemetry::TelemetryRecorder;
use coaxial::workloads::Workload;

struct Opts {
    config: String,
    instr: u64,
    warmup: u64,
    cores: usize,
    cxl_ns: Option<f64>,
    json: bool,
    sampled: bool,
    ops: usize,
    trace_start: u64,
    trace_end: u64,
    trace_cap: usize,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            config: "4x".into(),
            instr: coaxial::system::server::DEFAULT_INSTRUCTIONS,
            warmup: coaxial::system::server::DEFAULT_WARMUP,
            cores: 12,
            cxl_ns: None,
            json: false,
            // `--sampled` and COAXIAL_SAMPLING are equivalent opt-ins.
            sampled: coaxial::sim::env::sampling(),
            ops: 100_000,
            trace_start: 0,
            trace_end: u64::MAX,
            trace_cap: 1 << 16,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "{}",
        include_str!("coaxial.rs")
            .lines()
            .skip(2)
            .take(37)
            .map(|l| l.trim_start_matches("//! "))
            .collect::<Vec<_>>()
            .join("\n")
    );
    exit(2)
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {a}");
                exit(2)
            })
        };
        match a.as_str() {
            "--config" => o.config = next().clone(),
            "--instr" => o.instr = next().parse().expect("--instr wants a number"),
            "--warmup" => o.warmup = next().parse().expect("--warmup wants a number"),
            "--cores" => o.cores = next().parse().expect("--cores wants a number"),
            "--cxl-ns" => o.cxl_ns = Some(next().parse().expect("--cxl-ns wants a number")),
            "--json" => o.json = true,
            "--sampled" => o.sampled = true,
            "--ops" => o.ops = next().parse().expect("--ops wants a number"),
            "--trace-start" => o.trace_start = next().parse().expect("--trace-start wants a cycle"),
            "--trace-end" => o.trace_end = next().parse().expect("--trace-end wants a cycle"),
            "--trace-cap" => o.trace_cap = next().parse().expect("--trace-cap wants a number"),
            other => {
                eprintln!("unknown option {other}");
                exit(2)
            }
        }
    }
    o
}

fn or_exit<T>(r: Result<T, coaxial::system::ConfigError>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("{e}");
        exit(2)
    })
}

fn build_config(o: &Opts) -> SystemConfig {
    let mut cfg = or_exit(or_exit(SystemConfig::by_name(&o.config)).try_with_active_cores(o.cores));
    if let Some(ns) = o.cxl_ns {
        cfg = cfg.with_cxl_latency_ns(ns);
    }
    cfg
}

fn workload(name: &str) -> &'static Workload {
    Workload::by_name(name).unwrap_or_else(|| {
        eprintln!("unknown workload '{name}' — try `coaxial list`");
        exit(2)
    })
}

fn print_report(r: &RunReport) {
    let (on, q, s, x) = r.breakdown_ns;
    println!("config:      {}", r.config_name);
    println!("workloads:   {}", r.workload_names.join(", "));
    println!(
        "IPC:         {:.3} (per core: {})",
        r.ipc,
        r.per_core_ipc.iter().map(|i| format!("{i:.2}")).collect::<Vec<_>>().join(" ")
    );
    println!("MPKI:        {:.1}", r.mpki);
    println!(
        "L2-miss lat: {:.0} ns = on-chip {:.0} + queuing {:.0} + DRAM {:.0} + CXL {:.0}",
        r.l2_miss_latency_ns, on, q, s, x
    );
    println!(
        "bandwidth:   {:.1} GB/s ({:.1} rd + {:.1} wr), {:.0}% of peak",
        r.bandwidth_gbs,
        r.read_gbs,
        r.write_gbs,
        r.utilization * 100.0
    );
    println!("LLC miss ratio among L2 misses: {:.0}%", r.llc_miss_ratio * 100.0);
    if r.calm.decisions() > 0 {
        println!(
            "CALM:        FP {:.1}%/mem-access, FN {:.1}%/LLC-miss over {} decisions",
            r.calm.false_pos_per_mem_access() * 100.0,
            r.calm.false_neg_per_llc_miss() * 100.0,
            r.calm.decisions()
        );
    }
    println!("window:      {} cycles ({} instr/core)", r.cycles, r.instructions);
}

fn print_sampling(s: &SamplingSummary) {
    println!(
        "sampling:    IPC {:.3} ± {:.3} (95% CI) over {} of {} intervals{}",
        s.ipc_mean,
        s.ipc_ci_half,
        s.intervals_run,
        s.intervals_planned,
        if s.early_stopped { " — early stop" } else { "" }
    );
    println!(
        "             {} warm + {} measured instr per core per interval, {} per-core horizon; \
         totals: {} detailed vs {} fast-forwarded instr",
        s.warm_per_interval,
        s.measure_per_interval,
        s.horizon_instructions,
        s.detail_instructions,
        s.fast_forward_instructions
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "list" => {
            println!("{:<15} {:<8} {:>9} {:>10}", "workload", "suite", "paper IPC", "paper MPKI");
            for w in Workload::all() {
                println!(
                    "{:<15} {:<8} {:>9.2} {:>10}",
                    w.name,
                    format!("{:?}", w.suite),
                    w.paper_ipc,
                    w.paper_mpki
                );
            }
        }
        "configs" => {
            for cfg in [
                SystemConfig::ddr_baseline(),
                SystemConfig::coaxial_2x(),
                SystemConfig::coaxial_4x(),
                SystemConfig::coaxial_5x(),
                SystemConfig::coaxial_asym(),
            ] {
                println!(
                    "{:<13} {:>2} DDR channels, {:>5.1} GB/s peak, LLC {:>3.1} MB/core, CALM {}",
                    cfg.name,
                    cfg.ddr_channels(),
                    cfg.peak_bandwidth_gbs(),
                    cfg.functional.llc_mb_per_core,
                    cfg.timing.calm.label()
                );
            }
        }
        "run" => {
            let Some(wl) = args.get(1) else { usage() };
            let o = parse_opts(&args[2..]);
            let sim = Simulation::new(build_config(&o), workload(wl))
                .instructions_per_core(o.instr)
                .warmup(o.warmup);
            if o.sampled {
                let r = sim.run_sampled(&SamplingConfig::from_env());
                if o.json {
                    println!("{}", coaxial::gateway::sampled_report_to_json(&r));
                } else {
                    print_report(&r.report);
                    print_sampling(&r.sampling);
                }
            } else if o.json {
                // Same serializer as the gateway's /v1/run — the bodies
                // are byte-identical by construction (check.sh cmp's them).
                println!("{}", coaxial::gateway::report_to_json(&sim.run()));
            } else {
                print_report(&sim.run());
            }
        }
        "compare" => {
            let Some(wl) = args.get(1) else { usage() };
            let o = parse_opts(&args[2..]);
            let w = workload(wl);
            // One batch across the job pool; reports come back in config order.
            let specs: Vec<RunSpec> = [
                SystemConfig::ddr_baseline(),
                SystemConfig::coaxial_2x(),
                SystemConfig::coaxial_4x(),
                SystemConfig::coaxial_5x(),
                SystemConfig::coaxial_asym(),
            ]
            .into_iter()
            .map(|cfg| RunSpec::homogeneous(cfg.with_active_cores(o.cores), w, o.instr, o.warmup))
            .collect();
            let reports = run_all(&specs);
            let base = &reports[0];
            println!(
                "{:<14} {:>7} {:>9} {:>11} {:>10}",
                "config", "IPC", "speedup", "L2-miss ns", "util"
            );
            for r in &reports {
                println!(
                    "{:<14} {:>7.3} {:>8.2}x {:>11.0} {:>9.0}%",
                    r.config_name,
                    r.ipc,
                    r.speedup_over(base),
                    r.l2_miss_latency_ns,
                    r.utilization * 100.0
                );
            }
        }
        "sweep-latency" => {
            let Some(wl) = args.get(1) else { usage() };
            let o = parse_opts(&args[2..]);
            let w = workload(wl);
            let latencies = [10.0, 30.0, 50.0, 70.0, 90.0, 120.0];
            let specs: Vec<RunSpec> = std::iter::once(SystemConfig::ddr_baseline())
                .chain(
                    latencies.iter().map(|&ns| SystemConfig::coaxial_4x().with_cxl_latency_ns(ns)),
                )
                .map(|cfg| {
                    RunSpec::homogeneous(cfg.with_active_cores(o.cores), w, o.instr, o.warmup)
                })
                .collect();
            let reports = run_all(&specs);
            let base = &reports[0];
            println!("baseline IPC {:.3}", base.ipc);
            for (ns, r) in latencies.iter().zip(&reports[1..]) {
                println!(
                    "CXL {ns:>5.0} ns: IPC {:.3}  speedup {:.2}x",
                    r.ipc,
                    r.speedup_over(base)
                );
            }
        }
        "breakdown" => {
            let Some(wl) = args.get(1) else { usage() };
            let o = parse_opts(&args[2..]);
            let budget = Budget { instructions: o.instr, warmup: o.warmup };
            let configs =
                [SystemConfig::ddr_baseline().with_active_cores(o.cores), build_config(&o)];
            let rows = latency_breakdown(&configs, wl, budget);
            println!("mean L2-miss latency attribution on {wl}, ns (measured window)");
            print!("{:<16}", "component");
            for r in &rows {
                print!(" {:>14}", r.config_name);
            }
            println!();
            for i in 0..rows[0].components_ns.len() {
                print!("{:<16}", rows[0].components_ns[i].0);
                for r in &rows {
                    print!(" {:>14.1}", r.components_ns[i].1);
                }
                println!();
            }
            type RowGet = fn(&coaxial::system::experiments::BreakdownRow) -> f64;
            let footers: [(&str, RowGet); 2] =
                [("total (sum)", |r| r.total_ns), ("driver total", |r| r.report_total_ns)];
            for (label, get) in footers {
                print!("{label:<16}");
                for r in &rows {
                    print!(" {:>14.1}", get(r));
                }
                println!();
            }
            print!("{:<16}", "requests");
            for r in &rows {
                print!(" {:>14}", r.requests);
            }
            println!();
            print!("{:<16}", "IPC");
            for r in &rows {
                print!(" {:>14.3}", r.ipc);
            }
            println!();
        }
        "trace" => {
            let (Some(wl), Some(out)) = (args.get(1), args.get(2)) else { usage() };
            let o = parse_opts(&args[3..]);
            let rec =
                TelemetryRecorder::new().with_trace_window(o.trace_cap, o.trace_start, o.trace_end);
            let (r, rec, _metrics) = Simulation::new(build_config(&o), workload(wl))
                .instructions_per_core(o.instr)
                .warmup(o.warmup)
                .run_with_telemetry(rec);
            std::fs::write(out, rec.tracer.export_chrome_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {out}: {e}");
                exit(1)
            });
            println!(
                "wrote {} events ({} dropped) to {out} — load in https://ui.perfetto.dev or chrome://tracing",
                rec.tracer.len(),
                rec.tracer.dropped()
            );
            print_report(&r);
        }
        "profile" => {
            let Some(wl) = args.get(1) else { usage() };
            let o = parse_opts(&args[2..]);
            let p = coaxial::workloads::characterize(workload(wl), 0, 42, o.ops as u64);
            println!("workload:        {}", p.workload);
            println!("ops sampled:     {}", p.ops);
            println!("density:         {:.1} mem ops / kilo-instruction", p.density_per_ki);
            println!("write fraction:  {:.1}%", p.write_frac * 100.0);
            println!("dependent ops:   {:.1}%", p.dependent_frac * 100.0);
            println!("sequential ops:  {:.1}%", p.sequential_frac * 100.0);
            println!(
                "unique lines:    {} ({:.1} MB)",
                p.unique_lines,
                p.unique_lines as f64 * 64.0 / 1e6
            );
            println!("line reuse:      {:.1}%", p.reuse_frac * 100.0);
        }
        "capture" => {
            let (Some(wl), Some(path)) = (args.get(1), args.get(2)) else { usage() };
            let o = parse_opts(&args[3..]);
            let mut src = workload(wl).trace(0, 0xCAB);
            tracefile::capture(std::path::Path::new(path), src.as_mut(), o.ops).unwrap_or_else(
                |e| {
                    eprintln!("capture failed: {e}");
                    exit(1)
                },
            );
            println!("captured {} ops of {wl} to {path}", o.ops);
        }
        "checkpoint-stats" => {
            // Same config + workload twice: the first run populates the
            // prefill checkpoint stores, the second must restore. Exits
            // non-zero if it does not, so check.sh doubles as a smoke test
            // of the content-addressed store.
            let (wl, rest) = match args.get(1) {
                Some(a) if !a.starts_with("--") => (a.as_str(), &args[2..]),
                _ => ("mcf", &args[1..]),
            };
            let o = parse_opts(rest);
            let w = workload(wl);
            let run = || {
                let t = std::time::Instant::now();
                let (_, _, m) = Simulation::new(build_config(&o), w)
                    .instructions_per_core(o.instr)
                    .warmup(o.warmup)
                    .run_with_telemetry(TelemetryRecorder::new());
                (m, t.elapsed())
            };
            let (cold, cold_wall) = run();
            let (warm, warm_wall) = run();
            let ms = |m: &coaxial::telemetry::MetricsRegistry, p: &str| {
                m.counter(p).unwrap_or(0) as f64 / 1e6
            };
            println!("checkpoint stats: {wl} on {} (two identical runs)", build_config(&o).name);
            for (label, m, wall) in [("cold", &cold, cold_wall), ("warm", &warm, warm_wall)] {
                println!(
                    "{label}: wall {:>7.1} ms, prefill {:>7.1} ms (loop {:>7.1} ms), restored={}",
                    wall.as_secs_f64() * 1e3,
                    ms(m, "server.prefill.wall_ns"),
                    ms(m, "server.prefill.loop_wall_ns"),
                    m.counter("server.prefill.restored").unwrap_or(0)
                );
            }
            for store in ["state", "streams"] {
                let c = |name: &str| {
                    warm.counter(&format!("server.checkpoint.{store}.{name}")).unwrap_or(0)
                };
                let (mem, disk, miss) = (c("mem_hits"), c("disk_hits"), c("misses"));
                let lookups = mem + disk + miss;
                println!(
                    "{store:<7} store: {lookups} lookups — {mem} mem / {disk} disk hits, \
                     {miss} misses ({:.0}% hit), {} inserts, {} evictions, {} disk errors",
                    if lookups == 0 { 0.0 } else { (mem + disk) as f64 * 100.0 / lookups as f64 },
                    c("inserts"),
                    c("evictions"),
                    c("disk_errors")
                );
                println!(
                    "               {:.0} entries resident, {:.1} MB",
                    warm.gauge(&format!("server.checkpoint.{store}.entries")).unwrap_or(0.0),
                    warm.gauge(&format!("server.checkpoint.{store}.bytes")).unwrap_or(0.0) / 1e6
                );
            }
            if warm.counter("server.prefill.restored") != Some(1) {
                eprintln!("checkpoint-stats: second run did not restore from the store");
                exit(1);
            }
        }
        "replay" => {
            let Some(path) = args.get(1) else { usage() };
            let o = parse_opts(&args[2..]);
            let r = Simulation::from_trace_file(build_config(&o), path)
                .instructions_per_core(o.instr)
                .warmup(o.warmup)
                .run();
            print_report(&r);
        }
        "exp" => {
            let Some(name) = args.get(1) else { usage() };
            let o = parse_opts(&args[2..]);
            let budget = Budget { instructions: o.instr, warmup: o.warmup };
            match run_named(name, budget) {
                Some(out) => println!("{out}"),
                None => {
                    eprintln!(
                        "unknown experiment '{name}' — available: {}",
                        EXPERIMENT_NAMES.join(", ")
                    );
                    exit(2)
                }
            }
        }
        "serve" => {
            let mut cfg = coaxial::gateway::GatewayConfig::from_env();
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut next = || {
                    it.next().unwrap_or_else(|| {
                        eprintln!("missing value for {a}");
                        exit(2)
                    })
                };
                match a.as_str() {
                    "--addr" => cfg.addr = next().clone(),
                    "--workers" => {
                        cfg.workers = next().parse().expect("--workers wants a number");
                    }
                    "--queue-depth" => {
                        cfg.queue_depth = next().parse().expect("--queue-depth wants a number");
                    }
                    "--cache-mb" => {
                        cfg.cache_mb = next().parse().expect("--cache-mb wants a number");
                    }
                    "--rate" => cfg.rate_per_sec = next().parse().expect("--rate wants a number"),
                    "--burst" => cfg.burst = next().parse().expect("--burst wants a number"),
                    "--port-file" => cfg.port_file = Some(std::path::PathBuf::from(next())),
                    other => {
                        eprintln!("unknown option {other}");
                        exit(2)
                    }
                }
            }
            match coaxial::gateway::serve(cfg) {
                Ok(stats) => println!(
                    "gateway stopped: {} requests, {} jobs done ({} failed), \
                     {} dedup joins, {} queue rejections",
                    stats.requests_total,
                    stats.jobs_completed,
                    stats.jobs_failed,
                    stats.dedup_joins,
                    stats.queue_rejected
                ),
                Err(e) => {
                    eprintln!("serve failed: {e}");
                    exit(1)
                }
            }
        }
        "http" => {
            // Scripts use this where curl may not exist (offline images);
            // body to stdout, non-2xx/3xx statuses become a non-zero exit.
            let (Some(method), Some(url)) = (args.get(1), args.get(2)) else { usage() };
            let body = args.get(3).map(String::as_str).unwrap_or("");
            match coaxial::gateway::http::client_request(method, url, body.as_bytes()) {
                Ok(resp) => {
                    use std::io::Write as _;
                    std::io::stdout().write_all(&resp.body).expect("stdout");
                    if resp.status >= 400 {
                        eprintln!("HTTP {}", resp.status);
                        exit(1)
                    }
                }
                Err(e) => {
                    eprintln!("http request failed: {e}");
                    exit(1)
                }
            }
        }
        _ => usage(),
    }
}
