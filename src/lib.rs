//! COAXIAL — a CXL-centric memory system for scalable servers.
//!
//! This façade crate re-exports the whole reproduction of Cho, Saxena,
//! Qureshi & Daglis, *"COAXIAL: A CXL-Centric Memory System for Scalable
//! Servers"* (SC 2024):
//!
//! * [`sim`] — simulation substrate (clock, RNG, statistics),
//! * [`dram`] — cycle-level DDR5-4800 channel model (DRAMsim3 equivalent),
//! * [`cxl`] — CXL/PCIe link and Type-3 device models,
//! * [`cache`] — L1/L2/LLC hierarchy, NoC, and the CALM mechanisms,
//! * [`cpu`] — trace-driven out-of-order core model,
//! * [`workloads`] — the paper's 36 workloads as synthetic generators,
//! * [`system`] — full-system assembly, configurations, and every
//!   table/figure experiment from the paper's evaluation,
//! * [`gateway`] — simulation-as-a-service HTTP front end behind
//!   `coaxial serve` (result cache, in-flight dedup, bounded queue).
//!
//! # Quickstart
//!
//! ```
//! use coaxial::system::{SystemConfig, Simulation};
//! use coaxial::workloads::Workload;
//!
//! // Simulate STREAM-copy on the DDR baseline and on COAXIAL-4x.
//! let wl = Workload::by_name("stream-copy").unwrap();
//! let base = Simulation::new(SystemConfig::ddr_baseline(), &wl)
//!     .instructions_per_core(5_000)
//!     .run();
//! let coax = Simulation::new(SystemConfig::coaxial_4x(), &wl)
//!     .instructions_per_core(5_000)
//!     .run();
//! assert!(coax.ipc > 0.0 && base.ipc > 0.0);
//! ```

// No unsafe anywhere in this crate (lint U01 audit); keep it that way.
#![forbid(unsafe_code)]

pub use coaxial_cache as cache;
pub use coaxial_cpu as cpu;
pub use coaxial_cxl as cxl;
pub use coaxial_dram as dram;
pub use coaxial_gateway as gateway;
pub use coaxial_sim as sim;
pub use coaxial_system as system;
pub use coaxial_telemetry as telemetry;
pub use coaxial_workloads as workloads;
