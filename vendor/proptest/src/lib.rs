//! Offline mini stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates.io mirror, so this vendored
//! crate implements exactly the API surface the repo's property tests use:
//!
//! - `proptest! { ... }` with an optional `#![proptest_config(...)]` header
//! - `ProptestConfig { cases, ..ProptestConfig::default() }`
//! - `Strategy` (assoc type `Value`, combinator `prop_map`)
//! - range strategies (`1u64..1000`, `0.0f64..1.0`, ...), tuple strategies,
//!   `proptest::collection::vec`, `proptest::bool::ANY`
//! - `prop_assert!` / `prop_assert_eq!`
//!
//! Unlike real proptest there is no shrinking and no persistence: each test
//! runs `cases` deterministic iterations seeded from the test's name, so
//! failures reproduce exactly across runs and machines.

pub mod test_runner {
    /// Per-block configuration. Only `cases` is honoured; `max_shrink_iters`
    /// mirrors the real crate so `..ProptestConfig::default()` updates in
    /// test blocks stay meaningful (and clippy-clean) against this stub.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 1024 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name, so a
    /// given test sees the same case sequence on every run.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            TestRng(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`. Mirrors proptest's trait shape
    /// closely enough for `impl Strategy<Value = T>` return types.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A/0);
    tuple_strategy!(A/0, B/1);
    tuple_strategy!(A/0, B/1, C/2);
    tuple_strategy!(A/0, B/1, C/2, D/3);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, min..max)`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Any;

    /// `proptest::bool::ANY` — a fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions that run their body for `cases` generated
/// inputs. Supports the optional `#![proptest_config(expr)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

/// `prop_assert!` — panics on failure (no shrinking in this mini harness).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — panics on failure (no shrinking in this mini harness).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}
