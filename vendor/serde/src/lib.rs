//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no network access to a crates.io mirror, and the
//! repo uses `Serialize` purely as a marker on report structs (nothing is
//! serialized to a wire format in-tree). This stub keeps the same import
//! surface (`use serde::Serialize;` + `#[derive(Serialize)]`) with a blanket
//! impl so every type trivially satisfies `T: Serialize` bounds.

pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
