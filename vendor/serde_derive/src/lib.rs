//! Offline stand-in for `serde_derive`.
//!
//! The repo only ever uses `#[derive(Serialize)]` as a marker (no value is
//! ever serialized to a wire format in-tree), so the derives expand to
//! nothing; the companion `serde` stub provides a blanket trait impl.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
